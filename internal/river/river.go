// Package river implements the two core mechanisms of River (the
// authors' cluster-I/O programming environment, discussed in Section 4 of
// the paper as the precursor to fail-stutter-tolerant design): the
// distributed queue, which balances a stream of records across consumers
// of varying speed through back-pressure, and graduated declustering,
// which serves each mirrored data partition from both replicas in
// proportion to their observed rates so a single slow disk degrades
// aggregate read bandwidth gracefully instead of halving it.
//
// Both run on the internal/sim kernel. River "makes the fast case
// common": no component is ever declared failed, the system simply
// follows whatever performance the components actually deliver — the
// performance-fault half of the fail-stutter model, without the
// correctness-fault half (which the paper notes River lacks).
package river

import (
	"fmt"

	"failstutter/internal/faults"
	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

// Policy selects how the distributed queue routes the next record.
type Policy int

const (
	// RoundRobin ignores consumer state entirely (the static design).
	RoundRobin Policy = iota
	// RandomChoice picks a uniformly random consumer.
	RandomChoice
	// CreditBased picks the consumer with the most free queue slots —
	// River's back-pressure balancing; a slow consumer's queue stays
	// full, so it naturally receives fewer records.
	CreditBased
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case RandomChoice:
		return "random"
	case CreditBased:
		return "credit-based"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// DQParams configures a distributed queue.
type DQParams struct {
	// Consumers is the number of downstream consumers.
	Consumers int
	// ConsumerRate is each consumer's nominal service rate,
	// records/second.
	ConsumerRate float64
	// QueueCap bounds each consumer's queue, in records; the producer
	// blocks when every queue it may use is full.
	QueueCap int
	// Policy selects the routing discipline.
	Policy Policy
	// RNG is required for RandomChoice.
	RNG *sim.RNG
}

// DQ is a single-producer distributed queue over simulated consumers.
type DQ struct {
	s       *sim.Simulator
	p       DQParams
	cons    []*consumer
	rr      int
	blocked bool
	// waiting holds the producer continuation while back-pressured.
	resume func()

	produced  int64
	delivered int64

	tracer *trace.Tracer
	track  trace.TrackID // producer-side track for back-pressure instants
}

type consumer struct {
	station *sim.Station
	comp    *faults.Composite
	queued  int // records accepted but not yet finished
	done    int64
}

// NewDQ validates params and builds the queue.
func NewDQ(s *sim.Simulator, p DQParams) *DQ {
	if p.Consumers < 1 || p.ConsumerRate <= 0 || p.QueueCap < 1 {
		panic(fmt.Sprintf("river: invalid DQ params %+v", p))
	}
	if p.Policy == RandomChoice && p.RNG == nil {
		panic("river: RandomChoice requires an RNG")
	}
	dq := &DQ{s: s, p: p}
	for i := 0; i < p.Consumers; i++ {
		st := sim.NewStation(s, fmt.Sprintf("consumer-%d", i), p.ConsumerRate)
		dq.cons = append(dq.cons, &consumer{station: st, comp: faults.NewComposite(st)})
	}
	return dq
}

// SetTracer attaches a span tracer: each consumer station records its
// queue/service spans, and the producer records a "blocked" instant every
// time back-pressure stalls it.
func (dq *DQ) SetTracer(t *trace.Tracer) {
	dq.tracer = t
	if t != nil {
		dq.track = t.Track("producer")
	}
	for _, c := range dq.cons {
		c.station.SetTracer(t)
	}
}

// ConsumerComposite exposes consumer i's fault target.
func (dq *DQ) ConsumerComposite(i int) *faults.Composite { return dq.cons[i].comp }

// ConsumerDone returns records completed by consumer i.
func (dq *DQ) ConsumerDone(i int) int64 { return dq.cons[i].done }

// Delivered returns the total records fully consumed.
func (dq *DQ) Delivered() int64 { return dq.delivered }

// pick selects the target consumer for the next record, or -1 if every
// admissible queue is full.
func (dq *DQ) pick() int {
	switch dq.p.Policy {
	case RoundRobin:
		c := dq.rr % len(dq.cons)
		if dq.cons[c].queued >= dq.p.QueueCap {
			// Head-of-line: strict round-robin waits for exactly this
			// consumer; the cursor must not advance past it.
			return -1
		}
		dq.rr++
		return c
	case RandomChoice:
		c := dq.p.RNG.Intn(len(dq.cons))
		if dq.cons[c].queued >= dq.p.QueueCap {
			return -1
		}
		return c
	case CreditBased:
		best, bestFree := -1, 0
		for i, c := range dq.cons {
			free := dq.p.QueueCap - c.queued
			if free > bestFree {
				best, bestFree = i, free
			}
		}
		return best
	default:
		panic("river: unknown policy")
	}
}

// Produce streams n records through the queue as fast as back-pressure
// allows and calls onDone with the completion time when the last record
// finishes consumption. The caller runs the simulator.
func (dq *DQ) Produce(n int64, onDone func(makespan sim.Duration)) {
	start := dq.s.Now()
	remaining := n
	var push func()
	deliver := func(c *consumer) {
		c.queued--
		c.done++
		dq.delivered++
		if dq.delivered == n {
			onDone(dq.s.Now() - start)
			return
		}
		// Space freed: resume a blocked producer.
		if dq.blocked {
			dq.blocked = false
			push()
		}
	}
	push = func() {
		for remaining > 0 {
			c := dq.pick()
			if c < 0 {
				if dq.tracer != nil && !dq.blocked {
					dq.tracer.Instant(dq.track, "blocked", "river", dq.s.Now())
				}
				dq.blocked = true
				return
			}
			target := dq.cons[c]
			remaining--
			dq.produced++
			target.queued++
			target.station.SubmitFunc(1, func(*sim.Request) { deliver(target) })
		}
	}
	push()
}

// GDParams configures a graduated-declustering read set: P partitions,
// each mirrored on disks i and (i+1) mod P, read concurrently by P
// readers.
type GDParams struct {
	// Partitions is the number of data partitions (and disks).
	Partitions int
	// PartitionRecords is how many records each reader must consume.
	PartitionRecords int64
	// DiskRate is each disk's nominal service rate, records/second.
	DiskRate float64
	// Graduated selects mirror-proportional reading; false reads each
	// partition only from its primary copy (the static design).
	Graduated bool
	// Window is the per-reader outstanding-request bound per mirror.
	Window int
}

// GD is a graduated-declustering read workload.
type GD struct {
	s     *sim.Simulator
	p     GDParams
	disks []*sim.Station
	comps []*faults.Composite
}

// NewGD builds the disk set.
func NewGD(s *sim.Simulator, p GDParams) *GD {
	if p.Partitions < 2 || p.PartitionRecords < 1 || p.DiskRate <= 0 {
		panic(fmt.Sprintf("river: invalid GD params %+v", p))
	}
	if p.Window < 1 {
		p.Window = 2
	}
	g := &GD{s: s, p: p}
	for i := 0; i < p.Partitions; i++ {
		st := sim.NewStation(s, fmt.Sprintf("gd-disk-%d", i), p.DiskRate)
		g.disks = append(g.disks, st)
		g.comps = append(g.comps, faults.NewComposite(st))
	}
	return g
}

// SetTracer attaches a span tracer to every disk station.
func (g *GD) SetTracer(t *trace.Tracer) {
	for _, d := range g.disks {
		d.SetTracer(t)
	}
}

// DiskComposite exposes disk i's fault target.
func (g *GD) DiskComposite(i int) *faults.Composite { return g.comps[i] }

// Run reads every partition to completion and calls onDone with the
// makespan (the slowest reader) and per-reader finish times. The caller
// runs the simulator.
func (g *GD) Run(onDone func(makespan sim.Duration, finishes []sim.Duration)) {
	start := g.s.Now()
	n := g.p.Partitions
	finishes := make([]sim.Duration, n)
	remainingReaders := n
	for r := 0; r < n; r++ {
		r := r
		primary := g.disks[r]
		mirror := g.disks[(r+1)%n]
		remaining := g.p.PartitionRecords
		inflight := 0
		var pump func()
		complete := func() {
			inflight--
			if remaining == 0 && inflight == 0 {
				finishes[r] = g.s.Now() - start
				remainingReaders--
				if remainingReaders == 0 {
					worst := sim.Duration(0)
					for _, f := range finishes {
						if f > worst {
							worst = f
						}
					}
					onDone(worst, finishes)
				}
				return
			}
			pump()
		}
		issueTo := func(d *sim.Station) {
			remaining--
			inflight++
			d.SubmitFunc(1, func(*sim.Request) { complete() })
		}
		if g.Graduated() {
			// Keep a small window open on BOTH mirrors; each copy is
			// consumed at whatever rate it actually delivers, so the
			// partition's read rate is the sum of its mirrors' spare
			// capacity — River's graduated declustering.
			out := map[*sim.Station]int{}
			pump = func() {
				for remaining > 0 && out[primary] < g.p.Window {
					out[primary]++
					d := primary
					remaining--
					inflight++
					d.SubmitFunc(1, func(*sim.Request) { out[d]--; complete() })
				}
				for remaining > 0 && out[mirror] < g.p.Window {
					out[mirror]++
					d := mirror
					remaining--
					inflight++
					d.SubmitFunc(1, func(*sim.Request) { out[d]--; complete() })
				}
			}
		} else {
			// Static: the primary copy serves everything.
			pump = func() {
				for remaining > 0 && inflight < g.p.Window {
					issueTo(primary)
				}
			}
		}
		pump()
	}
}

// Graduated reports whether mirror-proportional reading is enabled.
func (g *GD) Graduated() bool { return g.p.Graduated }

// IdealMakespan returns the fluid-limit makespan with no faults.
func (g *GD) IdealMakespan() float64 {
	return float64(g.p.PartitionRecords) / g.p.DiskRate
}

// DegradedIdeal returns the fluid-limit makespan when one disk delivers
// factor of its rate, under graduated declustering: the total work is
// spread over (P-1)+factor disk-equivalents and, in the worst case, the
// two partitions sharing the slow disk split its deficit. For the static
// design the slow disk's primary partition simply takes 1/factor longer.
func (g *GD) DegradedIdeal(factor float64) float64 {
	p := float64(g.p.Partitions)
	total := float64(g.p.PartitionRecords) * p
	capacity := (p - 1 + factor) * g.p.DiskRate
	fluid := total / capacity
	if !g.p.Graduated {
		perPartition := float64(g.p.PartitionRecords) / (g.p.DiskRate * factor)
		if perPartition > fluid {
			return perPartition
		}
	}
	return fluid
}

package river

import (
	"math"
	"testing"

	"failstutter/internal/sim"
)

func TestDQPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || RandomChoice.String() != "random" ||
		CreditBased.String() != "credit-based" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "policy(9)" {
		t.Fatal("unknown policy name wrong")
	}
}

func TestDQValidation(t *testing.T) {
	s := sim.New()
	for i, p := range []DQParams{
		{},
		{Consumers: 2, ConsumerRate: 10},
		{Consumers: 2, ConsumerRate: 10, QueueCap: 4, Policy: RandomChoice}, // no RNG
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad params %d accepted", i)
				}
			}()
			NewDQ(s, p)
		}()
	}
}

func runDQ(t *testing.T, policy Policy, slowFactor float64, n int64) (makespan float64, perConsumer []int64) {
	t.Helper()
	s := sim.New()
	dq := NewDQ(s, DQParams{
		Consumers: 4, ConsumerRate: 100, QueueCap: 4,
		Policy: policy, RNG: sim.NewRNG(7),
	})
	if slowFactor > 0 {
		dq.ConsumerComposite(0).Set("slow", slowFactor)
	}
	done := false
	dq.Produce(n, func(m sim.Duration) { makespan = m; done = true })
	s.Run()
	if !done {
		t.Fatal("DQ run did not complete")
	}
	perConsumer = make([]int64, 4)
	for i := range perConsumer {
		perConsumer[i] = dq.ConsumerDone(i)
	}
	if dq.Delivered() != n {
		t.Fatalf("delivered %d of %d", dq.Delivered(), n)
	}
	return makespan, perConsumer
}

func TestDQHealthyAllPoliciesEquivalent(t *testing.T) {
	// With identical consumers, every policy approaches n/(4*rate).
	ideal := 2000.0 / (4 * 100)
	for _, p := range []Policy{RoundRobin, RandomChoice, CreditBased} {
		makespan, _ := runDQ(t, p, 0, 2000)
		if makespan < ideal*0.95 || makespan > ideal*1.5 {
			t.Fatalf("%v healthy makespan %v, ideal %v", p, makespan, ideal)
		}
	}
}

func TestDQCreditBasedShedsSlowConsumer(t *testing.T) {
	// Consumer 0 at 10% speed. Round-robin blocks head-of-line on its full
	// queue; credit-based routes around it and approaches the available
	// aggregate rate (3.1x100).
	rrMakespan, _ := runDQ(t, RoundRobin, 0.1, 2000)
	cbMakespan, perConsumer := runDQ(t, CreditBased, 0.1, 2000)
	if cbMakespan*2 > rrMakespan {
		t.Fatalf("credit-based %v not clearly faster than round-robin %v", cbMakespan, rrMakespan)
	}
	available := 2000.0 / (3.1 * 100)
	if cbMakespan > available*1.2 {
		t.Fatalf("credit-based makespan %v, available-bandwidth ideal %v", cbMakespan, available)
	}
	if perConsumer[0] >= perConsumer[1]/2 {
		t.Fatalf("slow consumer got %d records vs healthy %d; shedding absent",
			perConsumer[0], perConsumer[1])
	}
}

func TestDQWorkConservation(t *testing.T) {
	_, perConsumer := runDQ(t, CreditBased, 0.5, 1234)
	var sum int64
	for _, c := range perConsumer {
		sum += c
	}
	if sum != 1234 {
		t.Fatalf("per-consumer sum %d != produced 1234", sum)
	}
}

func TestGDValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad GD params accepted")
		}
	}()
	NewGD(sim.New(), GDParams{})
}

func runGD(t *testing.T, graduated bool, slowFactor float64) (makespan float64, g *GD) {
	t.Helper()
	s := sim.New()
	g = NewGD(s, GDParams{
		Partitions: 8, PartitionRecords: 400, DiskRate: 100,
		Graduated: graduated, Window: 2,
	})
	if slowFactor > 0 {
		g.DiskComposite(0).Set("slow", slowFactor)
	}
	done := false
	g.Run(func(m sim.Duration, _ []sim.Duration) { makespan = m; done = true })
	s.Run()
	if !done {
		t.Fatal("GD run did not complete")
	}
	return makespan, g
}

func TestGDHealthyMatchesIdeal(t *testing.T) {
	for _, graduated := range []bool{false, true} {
		makespan, g := runGD(t, graduated, 0)
		if math.Abs(makespan-g.IdealMakespan())/g.IdealMakespan() > 0.15 {
			t.Fatalf("graduated=%v healthy makespan %v, ideal %v",
				graduated, makespan, g.IdealMakespan())
		}
	}
}

func TestGDGracefulDegradation(t *testing.T) {
	// One disk at 50%: the static design's makespan doubles for the
	// unlucky partition; graduated declustering spreads the deficit so the
	// whole read set degrades by ~1/(2P) — River's headline property.
	staticSpan, gs := runGD(t, false, 0.5)
	gradSpan, gg := runGD(t, true, 0.5)
	if gradSpan*1.5 > staticSpan {
		t.Fatalf("graduated %v not clearly better than static %v", gradSpan, staticSpan)
	}
	if staticSpan < gs.DegradedIdeal(0.5)*0.9 {
		t.Fatalf("static span %v below its own lower bound %v", staticSpan, gs.DegradedIdeal(0.5))
	}
	// Graduated should stay within ~25% of the fluid limit.
	if gradSpan > gg.DegradedIdeal(0.5)*1.25 {
		t.Fatalf("graduated span %v, fluid ideal %v", gradSpan, gg.DegradedIdeal(0.5))
	}
}

func TestGDDegradedIdealShape(t *testing.T) {
	s := sim.New()
	g := NewGD(s, GDParams{Partitions: 8, PartitionRecords: 400, DiskRate: 100, Graduated: true})
	healthy := g.DegradedIdeal(1)
	if math.Abs(healthy-g.IdealMakespan()) > 1e-9 {
		t.Fatalf("DegradedIdeal(1) = %v, want ideal %v", healthy, g.IdealMakespan())
	}
	if g.DegradedIdeal(0.5) <= healthy {
		t.Fatal("degraded ideal not worse than healthy")
	}
	s2 := sim.New()
	gStatic := NewGD(s2, GDParams{Partitions: 8, PartitionRecords: 400, DiskRate: 100})
	if gStatic.DegradedIdeal(0.5) <= g.DegradedIdeal(0.5) {
		t.Fatal("static ideal not worse than graduated ideal")
	}
}

package core

import "testing"

func benchWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = float64(i%7) + 1
	}
	return w
}

func BenchmarkProportionalShares16(b *testing.B) {
	w := benchWeights(16)
	for i := 0; i < b.N; i++ {
		ProportionalShares(10000, w)
	}
}

func BenchmarkProportionalShares256(b *testing.B) {
	w := benchWeights(256)
	for i := 0; i < b.N; i++ {
		ProportionalShares(100000, w)
	}
}

func BenchmarkMinMakespanAssign64(b *testing.B) {
	w := benchWeights(64)
	for i := 0; i < b.N; i++ {
		MinMakespanAssign(50000, w)
	}
}

package core_test

import (
	"fmt"

	"failstutter/internal/core"
)

// ProportionalShares implements the paper's scenario-2 arithmetic: stripe
// blocks across mirror pairs in proportion to their gauged rates.
func ExampleProportionalShares() {
	gaugedRates := []float64{1.0, 1.0, 1.0, 0.25} // three healthy pairs, one slow
	shares := core.ProportionalShares(1300, gaugedRates)
	fmt.Println(shares)
	// Output:
	// [400 400 400 100]
}

// MinMakespanAssign refines the proportional split so the slowest finish
// time is minimized with integral blocks.
func ExampleMinMakespanAssign() {
	counts := core.MinMakespanAssign(100, []float64{10, 10, 5})
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	fmt.Println(counts, total)
	// Output:
	// [40 40 20] 100
}

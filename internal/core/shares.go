package core

import (
	"fmt"
	"math"
)

// ProportionalShares splits total units across recipients in proportion to
// their weights, using the largest-remainder method so the result is exact
// (shares sum to total) and each share is within one unit of its ideal
// fraction. A recipient with zero weight receives nothing unless every
// weight is zero, in which case the split is even — a storage controller
// must place blocks somewhere even when gauging has not converged.
//
// This is the arithmetic behind the paper's scenario-2/3 designs: "use the
// ratios to stripe data proportionally across the mirror-pairs".
func ProportionalShares(total int64, weights []float64) []int64 {
	if total < 0 {
		panic(fmt.Sprintf("core: negative total %d", total))
	}
	n := len(weights)
	if n == 0 {
		panic("core: no recipients")
	}
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("core: invalid weight %v at %d", w, i))
		}
		sum += w
	}
	shares := make([]int64, n)
	if sum == 0 {
		// Even split with remainder to the earliest recipients.
		base := total / int64(n)
		rem := total % int64(n)
		for i := range shares {
			shares[i] = base
			if int64(i) < rem {
				shares[i]++
			}
		}
		return shares
	}
	type frac struct {
		idx  int
		frac float64
	}
	assigned := int64(0)
	fracs := make([]frac, n)
	for i, w := range weights {
		ideal := float64(total) * w / sum
		fl := math.Floor(ideal)
		shares[i] = int64(fl)
		assigned += shares[i]
		fracs[i] = frac{idx: i, frac: ideal - fl}
	}
	// Hand out the remainder by largest fractional part, index order on
	// ties for determinism.
	rem := total - assigned
	for k := int64(0); k < rem; k++ {
		best := -1
		for i := range fracs {
			if fracs[i].frac < 0 {
				continue
			}
			if best < 0 || fracs[i].frac > fracs[best].frac {
				best = i
			}
		}
		shares[fracs[best].idx]++
		fracs[best].frac = -1
	}
	return shares
}

// MinMakespanAssign assigns n identical unit tasks to servers with the
// given rates so the slowest finish time is minimized; with divisible
// work this is exactly proportional, and for integral blocks greedy
// water-filling is optimal: repeatedly give the next block to the server
// whose completion time after the block is smallest. Returns per-server
// counts. Rates must be positive; a zero-rate server gets nothing (unless
// all are zero, which panics: no progress is possible).
func MinMakespanAssign(n int64, rates []float64) []int64 {
	if len(rates) == 0 {
		panic("core: no servers")
	}
	counts := make([]int64, len(rates))
	anyPositive := false
	for _, r := range rates {
		if r > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		panic("core: all server rates are zero")
	}
	if n == 0 {
		return counts
	}
	// Start from the proportional split, then fix up with greedy moves —
	// proportional is within one block of optimal per server, so at most a
	// few adjustments occur and the common case is O(n_servers log) work.
	counts = ProportionalShares(n, rates)
	finish := func(i int) float64 {
		if rates[i] == 0 {
			if counts[i] == 0 {
				return 0
			}
			return math.Inf(1)
		}
		return float64(counts[i]) / rates[i]
	}
	for {
		// Move a block from the worst-finishing server to the best if it
		// strictly improves the makespan.
		worst, best := 0, 0
		for i := range rates {
			if finish(i) > finish(worst) {
				worst = i
			}
			if rates[i] > 0 && (rates[best] == 0 || (float64(counts[i])+1)/rates[i] < (float64(counts[best])+1)/rates[best]) {
				best = i
			}
		}
		if counts[worst] == 0 || rates[best] == 0 {
			break
		}
		newBestFinish := (float64(counts[best]) + 1) / rates[best]
		if newBestFinish >= finish(worst) {
			break
		}
		counts[worst]--
		counts[best]++
	}
	return counts
}

// Package core formalizes the fail-stutter fault model of Arpaci-Dusseau &
// Arpaci-Dusseau (HotOS 2001) and provides the controller that wires its
// three ingredients together:
//
//  1. separation of performance faults from correctness faults
//     (spec.Verdict: Nominal / PerfFaulty / AbsoluteFaulty, with the
//     promotion threshold T resolving "arbitrarily slow");
//  2. selective notification of persistent performance state
//     (detect.Registry, with a configurable publication policy);
//  3. per-component performance specifications (internal/spec) and the
//     detectors that evaluate them (internal/detect).
//
// It also provides the proportional-share placement arithmetic used by
// the adaptive storage and scheduling designs of Section 3.2.
package core

import (
	"fmt"
	"sort"

	"failstutter/internal/detect"
	"failstutter/internal/sim"
	"failstutter/internal/spec"
	"failstutter/internal/trace"
)

// ComponentID identifies a monitored component.
type ComponentID = string

// NotifyPolicy selects which verdict transitions are published to the
// registry — the design axis of experiment E19.
type NotifyPolicy int

const (
	// NotifyPersistent publishes only transitions that survive the
	// component's hysteresis filter (the paper's recommendation).
	NotifyPersistent NotifyPolicy = iota
	// NotifyEvery publishes every raw verdict change, including
	// single-sample blips; cheap to implement, expensive on the wire.
	NotifyEvery
)

// String returns the policy name.
func (p NotifyPolicy) String() string {
	switch p {
	case NotifyPersistent:
		return "persistent"
	case NotifyEvery:
		return "every"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// AttachConfig configures monitoring for one component.
type AttachConfig struct {
	// Interval is the probe sampling period, seconds.
	Interval sim.Duration
	// Detector judges the component's rate stream. Required.
	Detector detect.Detector
	// Policy selects raw or debounced publication. With NotifyPersistent,
	// EnterAfter/ExitAfter configure the hysteresis streaks (defaulting to
	// 3 and 3).
	Policy     NotifyPolicy
	EnterAfter int
	ExitAfter  int
	// Record, when true, keeps every rate sample in a trace.Series
	// retrievable via Controller.Series — the observability the paper's
	// "measurement of existing systems" agenda requires.
	Record bool
	// Audit, when non-nil, receives the component's verdict state-machine
	// decisions (transitions, debounce suppressions, latches) with the
	// evidence behind each one.
	Audit *trace.AuditLog
	// Metrics, when non-nil, registers the component's rate samples as a
	// labeled "rate" series (label component=<id> plus MetricsLabels)
	// instead of the private series Record allocates.
	Metrics       *trace.Registry
	MetricsLabels []trace.Label
}

// Controller is the fail-stutter control plane for a set of simulated
// components: it probes work counters, runs detectors, and publishes
// classifications to a shared registry that placement policies consult.
type Controller struct {
	s        *sim.Simulator
	registry *detect.Registry
	watched  map[ComponentID]*watch
}

type watch struct {
	det    detect.Detector
	probe  *detect.Probe
	series *trace.Series
}

// NewController builds a controller publishing into its own registry.
func NewController(s *sim.Simulator) *Controller {
	return &Controller{
		s:        s,
		registry: detect.NewRegistry(),
		watched:  make(map[ComponentID]*watch),
	}
}

// Registry exposes the notification plane.
func (c *Controller) Registry() *detect.Registry { return c.registry }

// Watch attaches monitoring to a component identified by id, sampling the
// given cumulative work counter. It panics on duplicate ids or a missing
// detector — both are wiring bugs.
func (c *Controller) Watch(id ComponentID, counter func() float64, cfg AttachConfig) {
	if _, dup := c.watched[id]; dup {
		panic(fmt.Sprintf("core: component %q watched twice", id))
	}
	if cfg.Detector == nil {
		panic(fmt.Sprintf("core: component %q has no detector", id))
	}
	if cfg.Interval <= 0 {
		panic(fmt.Sprintf("core: component %q has non-positive probe interval", id))
	}
	det := cfg.Detector
	if cfg.Policy == NotifyPersistent {
		enter, exit := cfg.EnterAfter, cfg.ExitAfter
		if enter == 0 {
			enter = 3
		}
		if exit == 0 {
			exit = 3
		}
		h := detect.NewHysteresis(det, enter, exit)
		if cfg.Audit != nil {
			h.EnableAudit(cfg.Audit, id)
		}
		det = h
	} else if cfg.Audit != nil {
		det = detect.NewAudited(det, cfg.Audit, id)
	}
	w := &watch{det: det}
	if cfg.Metrics != nil {
		labels := append(append([]trace.Label(nil), cfg.MetricsLabels...), trace.L("component", id))
		w.series = cfg.Metrics.Series("rate", labels...)
	} else if cfg.Record {
		w.series = &trace.Series{}
	}
	w.probe = detect.NewProbe(c.s, cfg.Interval, counter, func(now, rate float64) {
		if w.series != nil {
			w.series.Add(now, rate)
		}
		det.Observe(now, rate)
		c.registry.Update(now, id, det.Verdict(now))
	})
	c.watched[id] = w
}

// Series returns the recorded rate samples for a component watched with
// Record set, or nil otherwise.
func (c *Controller) Series(id ComponentID) *trace.Series {
	if w := c.watched[id]; w != nil {
		return w.series
	}
	return nil
}

// WatchRate attaches monitoring where the caller computes each rate
// sample itself — needed when the meaningful rate is not a simple counter
// delta (e.g. service speed = bytes per busy-second, which distinguishes
// a slow component from an idle one). sample is invoked once per
// interval with the current time and must return the rate to judge.
func (c *Controller) WatchRate(id ComponentID, sample func(now float64) float64, cfg AttachConfig) {
	// Reuse Watch's probe scheduling by wrapping the sampler as a
	// synthetic cumulative counter: integrating the sampled rate over
	// time lets the probe's delta/interval recover the sample exactly.
	integral := 0.0
	lastT := c.s.Now()
	c.Watch(id, func() float64 {
		now := c.s.Now()
		if now > lastT {
			integral += sample(now) * (now - lastT)
			lastT = now
		}
		return integral
	}, cfg)
}

// State returns the current published classification for a component.
func (c *Controller) State(id ComponentID) spec.Verdict { return c.registry.State(id) }

// Stop halts all probes.
func (c *Controller) Stop() {
	for _, w := range c.watched {
		w.probe.Stop()
	}
}

// Watched returns the monitored component ids, sorted.
func (c *Controller) Watched() []ComponentID {
	ids := make([]ComponentID, 0, len(c.watched))
	for id := range c.watched {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

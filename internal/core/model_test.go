package core

import (
	"testing"

	"failstutter/internal/detect"
	"failstutter/internal/sim"
	"failstutter/internal/spec"
)

// saturatedStation keeps a station busy forever and returns a work
// counter.
func saturatedStation(s *sim.Simulator, name string, rate float64) (*sim.Station, func() float64) {
	st := sim.NewStation(s, name, rate)
	var refill func()
	refill = func() {
		st.SubmitFunc(rate/10, func(*sim.Request) { refill() })
	}
	refill()
	return st, func() float64 { return float64(st.Completed()) * rate / 10 }
}

func specDetector() detect.Detector {
	return detect.NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.3, PromotionTimeout: 20})
}

func TestNotifyPolicyString(t *testing.T) {
	if NotifyPersistent.String() != "persistent" || NotifyEvery.String() != "every" {
		t.Fatal("policy names wrong")
	}
	if NotifyPolicy(9).String() != "policy(9)" {
		t.Fatal("unknown policy name wrong")
	}
}

func TestControllerDetectsStutter(t *testing.T) {
	s := sim.New()
	ctl := NewController(s)
	st, counter := saturatedStation(s, "d0", 100)
	ctl.Watch("d0", counter, AttachConfig{
		Interval: 1,
		Detector: specDetector(),
		Policy:   NotifyPersistent,
	})
	s.At(50, func() { st.SetMultiplier(0.3) })
	s.RunUntil(100)
	if ctl.State("d0") != spec.PerfFaulty {
		t.Fatalf("state = %v, want perf-faulty", ctl.State("d0"))
	}
	if got := ctl.Registry().Faulty(); len(got) != 1 || got[0] != "d0" {
		t.Fatalf("faulty = %v", got)
	}
}

func TestControllerHealthyStaysNominal(t *testing.T) {
	s := sim.New()
	ctl := NewController(s)
	_, counter := saturatedStation(s, "d0", 100)
	ctl.Watch("d0", counter, AttachConfig{Interval: 1, Detector: specDetector()})
	s.RunUntil(100)
	if ctl.State("d0") != spec.Nominal {
		t.Fatalf("state = %v", ctl.State("d0"))
	}
	if n := ctl.Registry().Notifications(); n != 0 {
		t.Fatalf("healthy component produced %d notifications", n)
	}
}

func TestControllerPromotionOnCrash(t *testing.T) {
	s := sim.New()
	ctl := NewController(s)
	st, counter := saturatedStation(s, "d0", 100)
	ctl.Watch("d0", counter, AttachConfig{Interval: 1, Detector: specDetector()})
	s.At(30, st.Fail)
	s.RunUntil(100)
	if ctl.State("d0") != spec.AbsoluteFaulty {
		t.Fatalf("state = %v, want absolute after sustained silence", ctl.State("d0"))
	}
}

func TestControllerNotifyEveryVsPersistent(t *testing.T) {
	// A blinking fault (1 bad sample in 4) should generate notifications
	// under NotifyEvery but none under NotifyPersistent with streak 3.
	run := func(policy NotifyPolicy) uint64 {
		s := sim.New()
		ctl := NewController(s)
		st, counter := saturatedStation(s, "d0", 100)
		ctl.Watch("d0", counter, AttachConfig{
			Interval: 1, Detector: specDetector(), Policy: policy,
		})
		// Blink: drop to 10% for 1 s every 4 s.
		var blink func()
		blink = func() {
			st.SetMultiplier(0.1)
			s.After(1, func() {
				st.SetMultiplier(1)
				s.After(3, blink)
			})
		}
		s.At(10, blink)
		s.RunUntil(200)
		return ctl.Registry().Notifications()
	}
	every := run(NotifyEvery)
	persistent := run(NotifyPersistent)
	if every < 10 {
		t.Fatalf("NotifyEvery notifications = %d, want many", every)
	}
	if persistent != 0 {
		t.Fatalf("NotifyPersistent notifications = %d, want 0 for transient blips", persistent)
	}
}

func TestControllerDuplicateWatchPanics(t *testing.T) {
	s := sim.New()
	ctl := NewController(s)
	_, counter := saturatedStation(s, "d0", 100)
	ctl.Watch("d0", counter, AttachConfig{Interval: 1, Detector: specDetector()})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate watch did not panic")
		}
	}()
	ctl.Watch("d0", counter, AttachConfig{Interval: 1, Detector: specDetector()})
}

func TestControllerMissingDetectorPanics(t *testing.T) {
	s := sim.New()
	ctl := NewController(s)
	defer func() {
		if recover() == nil {
			t.Fatal("nil detector did not panic")
		}
	}()
	ctl.Watch("d0", func() float64 { return 0 }, AttachConfig{Interval: 1})
}

func TestControllerWatchedSorted(t *testing.T) {
	s := sim.New()
	ctl := NewController(s)
	_, c1 := saturatedStation(s, "b", 10)
	_, c2 := saturatedStation(s, "a", 10)
	ctl.Watch("b", c1, AttachConfig{Interval: 1, Detector: specDetector()})
	ctl.Watch("a", c2, AttachConfig{Interval: 1, Detector: specDetector()})
	w := ctl.Watched()
	if len(w) != 2 || w[0] != "a" || w[1] != "b" {
		t.Fatalf("watched = %v", w)
	}
}

func TestControllerRecordsSeries(t *testing.T) {
	s := sim.New()
	ctl := NewController(s)
	_, counter := saturatedStation(s, "d0", 100)
	ctl.Watch("d0", counter, AttachConfig{
		Interval: 1, Detector: specDetector(), Record: true,
	})
	s.RunUntil(20)
	series := ctl.Series("d0")
	if series == nil || series.Len() < 18 {
		t.Fatalf("series missing or short: %v", series)
	}
	if series.Last() != 100 {
		t.Fatalf("recorded rate = %v, want 100", series.Last())
	}
	if ctl.Series("unknown") != nil {
		t.Fatal("unknown component returned a series")
	}
}

func TestControllerWatchRateSampler(t *testing.T) {
	s := sim.New()
	ctl := NewController(s)
	level := 100.0
	ctl.WatchRate("svc", func(now float64) float64 { return level }, AttachConfig{
		Interval: 1,
		Detector: detect.NewSpecDetector(spec.Spec{ExpectedRate: 100, Tolerance: 0.3}),
		Policy:   NotifyEvery,
		Record:   true,
	})
	s.RunUntil(10)
	if ctl.State("svc") != spec.Nominal {
		t.Fatalf("state = %v", ctl.State("svc"))
	}
	level = 20
	s.RunUntil(20)
	if ctl.State("svc") != spec.PerfFaulty {
		t.Fatalf("state after drop = %v", ctl.State("svc"))
	}
	// The recorded samples must reproduce the sampled levels exactly.
	series := ctl.Series("svc")
	if series.At(5) != 100 || series.At(19) != 20 {
		t.Fatalf("series values wrong: at5=%v at19=%v", series.At(5), series.At(19))
	}
}

func TestControllerStopHaltsProbes(t *testing.T) {
	s := sim.New()
	ctl := NewController(s)
	st, counter := saturatedStation(s, "d0", 100)
	ctl.Watch("d0", counter, AttachConfig{Interval: 1, Detector: specDetector(), Policy: NotifyEvery})
	s.RunUntil(10)
	ctl.Stop()
	st.SetMultiplier(0.1)
	s.RunUntil(50)
	if ctl.State("d0") != spec.Nominal {
		t.Fatal("stopped controller still updating state")
	}
}

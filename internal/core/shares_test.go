package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProportionalSharesExact(t *testing.T) {
	shares := ProportionalShares(100, []float64{1, 1, 2})
	want := []int64{25, 25, 50}
	for i := range want {
		if shares[i] != want[i] {
			t.Fatalf("shares = %v, want %v", shares, want)
		}
	}
}

func TestProportionalSharesRemainder(t *testing.T) {
	shares := ProportionalShares(10, []float64{1, 1, 1})
	sum := int64(0)
	for _, s := range shares {
		sum += s
	}
	if sum != 10 {
		t.Fatalf("shares %v sum to %d", shares, sum)
	}
	for _, s := range shares {
		if s < 3 || s > 4 {
			t.Fatalf("uneven split: %v", shares)
		}
	}
}

func TestProportionalSharesZeroWeight(t *testing.T) {
	shares := ProportionalShares(10, []float64{1, 0, 1})
	if shares[1] != 0 {
		t.Fatalf("zero-weight recipient got %d", shares[1])
	}
	if shares[0]+shares[2] != 10 {
		t.Fatalf("shares = %v", shares)
	}
}

func TestProportionalSharesAllZeroWeightsEvenSplit(t *testing.T) {
	shares := ProportionalShares(10, []float64{0, 0, 0})
	sum := int64(0)
	for _, s := range shares {
		sum += s
		if s < 3 || s > 4 {
			t.Fatalf("uneven fallback split: %v", shares)
		}
	}
	if sum != 10 {
		t.Fatalf("fallback shares sum to %d", sum)
	}
}

func TestProportionalSharesPanics(t *testing.T) {
	cases := []func(){
		func() { ProportionalShares(-1, []float64{1}) },
		func() { ProportionalShares(1, nil) },
		func() { ProportionalShares(1, []float64{-1}) },
		func() { ProportionalShares(1, []float64{math.NaN()}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// Properties: shares sum to total and each share is within 1 of ideal.
func TestProportionalSharesProperty(t *testing.T) {
	f := func(total16 uint16, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		total := int64(total16 % 10000)
		weights := make([]float64, len(raw))
		sum := 0.0
		for i, v := range raw {
			weights[i] = float64(v)
			sum += weights[i]
		}
		shares := ProportionalShares(total, weights)
		var got int64
		for _, s := range shares {
			got += s
		}
		if got != total {
			return false
		}
		if sum == 0 {
			return true
		}
		for i, s := range shares {
			ideal := float64(total) * weights[i] / sum
			if math.Abs(float64(s)-ideal) > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMakespanAssignBasic(t *testing.T) {
	counts := MinMakespanAssign(100, []float64{10, 10, 5})
	if counts[0]+counts[1]+counts[2] != 100 {
		t.Fatalf("counts %v do not sum", counts)
	}
	// Makespan should equal ceil-ish of 100/25 = 4 time units.
	worst := 0.0
	rates := []float64{10, 10, 5}
	for i, c := range counts {
		f := float64(c) / rates[i]
		if f > worst {
			worst = f
		}
	}
	if worst > 4.2 {
		t.Fatalf("makespan %v too large for counts %v", worst, counts)
	}
}

func TestMinMakespanZeroRateServerGetsNothing(t *testing.T) {
	counts := MinMakespanAssign(10, []float64{5, 0})
	if counts[1] != 0 {
		t.Fatalf("dead server got %d blocks", counts[1])
	}
	if counts[0] != 10 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestMinMakespanAllZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("all-zero rates did not panic")
		}
	}()
	MinMakespanAssign(10, []float64{0, 0})
}

func TestMinMakespanZeroTasks(t *testing.T) {
	counts := MinMakespanAssign(0, []float64{1, 2})
	if counts[0] != 0 || counts[1] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

// Property: the assignment's makespan never exceeds the fluid (divisible)
// makespan by more than one block on the slowest server — the integrality
// gap bound for unit blocks.
func TestMinMakespanNearOptimalProperty(t *testing.T) {
	f := func(n16 uint16, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		n := int64(n16 % 2000)
		rates := make([]float64, 0, len(raw))
		sum := 0.0
		minRate := math.Inf(1)
		for _, v := range raw {
			r := float64(v%20) + 1
			rates = append(rates, r)
			sum += r
			if r < minRate {
				minRate = r
			}
		}
		counts := MinMakespanAssign(n, rates)
		var got int64
		worst := 0.0
		for i, c := range counts {
			got += c
			f := float64(c) / rates[i]
			if f > worst {
				worst = f
			}
		}
		if got != n {
			return false
		}
		fluid := float64(n) / sum
		return worst <= fluid+1/minRate+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

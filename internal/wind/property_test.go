package wind

import (
	"testing"
	"testing/quick"

	"failstutter/internal/faults"
	"failstutter/internal/sim"
	"failstutter/internal/spec"
)

// Property: under arbitrary non-fatal fault schedules, every acknowledged
// write has all its replicas on distinct nodes, and the adaptive volume's
// bookkeeping covers exactly the blocks issued.
func TestVolumeReplicaDistinctnessUnderFaults(t *testing.T) {
	f := func(seed uint64, rawFaults []uint8) bool {
		s := sim.New()
		v := mustVolume(s, Adaptive)
		rng := sim.NewRNG(seed)
		for i, b := range rawFaults {
			if i >= 4 {
				break
			}
			node := v.Node(int(b) % 6).Disk()
			start := rng.Uniform(0, 4)
			faults.Interval{
				Start: start, End: start + rng.Uniform(0.5, 3),
				Factor: rng.Uniform(0.02, 0.6),
			}.Install(s, node.Composite())
		}
		issued := 0
		for i := 0; i < 200; i++ {
			v.Write(nil)
			issued++
		}
		s.RunUntil(30)
		if v.Bookkeeping() != issued {
			return false
		}
		for _, nodes := range v.placements {
			seen := map[int]bool{}
			for _, n := range nodes {
				if n < 0 || n >= 6 || seen[n] {
					return false
				}
				seen[n] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: acknowledged writes never exceed issued writes, and with no
// faults the two converge once the simulator drains the load.
func TestVolumeAckConservation(t *testing.T) {
	f := func(n16 uint16) bool {
		n := int(n16%300) + 1
		s := sim.New()
		v := mustVolume(s, Adaptive)
		acked := 0
		for i := 0; i < n; i++ {
			v.Write(func() { acked++ })
		}
		s.RunUntil(60)
		return acked == n && v.Written() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// The service-speed sampler must keep an idle volume nominal forever: no
// demand is not evidence of a fault.
func TestVolumeIdleStaysNominal(t *testing.T) {
	s := sim.New()
	v := mustVolume(s, Adaptive)
	s.RunUntil(100)
	for i := 0; i < 6; i++ {
		if v.Controller().State(nodeID(i)) != spec.Nominal {
			t.Fatalf("idle node %d state = %v", i, v.Controller().State(nodeID(i)))
		}
	}
	if v.Controller().Registry().Notifications() != 0 {
		t.Fatalf("idle volume published %d notifications", v.Controller().Registry().Notifications())
	}
}

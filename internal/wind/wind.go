// Package wind implements a network storage volume in the spirit of the
// Wisconsin Network Disks (WiND) project the paper names as its vehicle
// for fail-stutter-tolerant storage: "we are investigating the adaptive
// software techniques that we believe are central to building robust and
// manageable storage systems" (Section 5).
//
// A Volume stripes replicated blocks over storage nodes reached through
// simulated network links. Unlike internal/raid — whose adaptive striper
// balances implicitly through work-conserving pulls — the volume closes
// the paper's full loop explicitly: a core.Controller probes every node,
// classifies it against its performance specification, publishes
// persistent state to the registry, and the placement policy *consults
// that registry*, diverting writes away from performance-faulty nodes and
// hedging reads around them. Absolute faults divert permanently;
// performance faults divert until the node recovers.
package wind

import (
	"fmt"

	"failstutter/internal/core"
	"failstutter/internal/detect"
	"failstutter/internal/device"
	"failstutter/internal/sim"
	"failstutter/internal/spec"
)

// NodeParams configures one storage node: a disk behind a network link.
type NodeParams struct {
	Disk device.DiskParams
	// LinkBandwidth is the node's network bandwidth, bytes/s.
	LinkBandwidth float64
	// LinkLatency is the one-way network latency, seconds.
	LinkLatency sim.Duration
}

// Node is a storage brick: requests traverse the link, then the disk.
type Node struct {
	index int
	disk  *device.Disk
	link  *device.Link
}

// Disk exposes the node's disk (fault-injection target).
func (n *Node) Disk() *device.Disk { return n.disk }

// Link exposes the node's link (fault-injection target).
func (n *Node) Link() *device.Link { return n.link }

// write sends one block over the link and onto the disk.
func (n *Node) write(block int64, blockBytes float64, onDone func()) {
	n.link.Send(blockBytes, func(float64) {
		n.disk.Write(block, 1, func(float64) {
			if onDone != nil {
				onDone()
			}
		})
	})
}

// read fetches one block: request over the link (small), disk access,
// response over the link (full block).
func (n *Node) read(block int64, blockBytes float64, onDone func()) {
	n.link.Send(64, func(float64) {
		n.disk.Read(block, 1, func(float64) {
			n.link.Send(blockBytes, func(float64) {
				if onDone != nil {
					onDone()
				}
			})
		})
	})
}

// Policy selects how placement reacts to published component state.
type Policy int

const (
	// Static ignores the registry: blocks always land on their home
	// nodes, the fail-stop design.
	Static Policy = iota
	// Adaptive consults the registry: writes divert from nodes published
	// as performance- or absolutely-faulty, and reads hedge.
	Adaptive
)

// String returns the policy name.
func (p Policy) String() string {
	if p == Adaptive {
		return "adaptive"
	}
	return "static"
}

// VolumeParams configures a volume.
type VolumeParams struct {
	// Nodes is the number of storage nodes (>= Replication+1).
	Nodes int
	// Replication is the copies per block (>= 1).
	Replication int
	// BlockBytes is the logical block size.
	BlockBytes float64
	// Policy selects static or adaptive placement.
	Policy Policy
	// Spec is the per-node performance specification the controller
	// judges nodes against (rate in bytes/s of disk service).
	Spec spec.Spec
	// ProbeInterval is the monitoring period, seconds (default 0.5).
	ProbeInterval sim.Duration
	// HedgeAfter, if positive, re-issues unfinished adaptive reads to
	// another replica after this many seconds.
	HedgeAfter sim.Duration
	// WriteTimeout, if positive, re-issues an unacknowledged adaptive
	// replica write to another node after this many seconds — the
	// promotion threshold applied per request, so writers do not wedge on
	// a node that dies or stalls mid-write. First completion wins.
	WriteTimeout sim.Duration
}

// Volume is a replicated, monitored network block store.
type Volume struct {
	s     *sim.Simulator
	p     VolumeParams
	nodes []*Node
	ctl   *core.Controller

	// placements records, per logical block, the node set holding it —
	// static placement needs no records (it is a pure function), adaptive
	// placement pays the paper's bookkeeping cost.
	placements map[int64][]int
	nextHome   int64
	diverted   uint64
	written    uint64
	read       uint64
}

// NewVolume builds the volume and its monitoring plane.
func NewVolume(s *sim.Simulator, p VolumeParams, mkNode func(i int) NodeParams) (*Volume, error) {
	if p.Nodes < p.Replication+1 || p.Replication < 1 || p.BlockBytes <= 0 {
		return nil, fmt.Errorf("wind: invalid volume params %+v", p)
	}
	if err := p.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("wind: %w", err)
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = 0.5
	}
	v := &Volume{s: s, p: p, placements: make(map[int64][]int)}
	v.ctl = core.NewController(s)
	for i := 0; i < p.Nodes; i++ {
		np := mkNode(i)
		disk, err := device.NewDisk(s, np.Disk)
		if err != nil {
			return nil, err
		}
		link := device.NewLink(s, fmt.Sprintf("wind-link-%d", i), np.LinkBandwidth, np.LinkLatency)
		n := &Node{index: i, disk: disk, link: link}
		v.nodes = append(v.nodes, n)
		// Judge each node by its *service speed* (bytes per busy-second),
		// not raw throughput: a disk that is merely idle must not look
		// slow, and a disk that is stuck with queued work must look
		// silent. With no demand at all there is no evidence either way,
		// so the sampler reports the spec rate (innocent until measured).
		interval := p.ProbeInterval
		lastBytes, lastBusy := 0.0, 0.0
		v.ctl.WatchRate(nodeID(i), func(now float64) float64 {
			db := disk.BytesCompleted() - lastBytes
			dbusy := disk.BusyTime() - lastBusy
			lastBytes += db
			lastBusy += dbusy
			switch {
			case disk.Failed():
				return 0
			case dbusy > 0.05*interval:
				return db / dbusy
			case disk.Pending() > 0:
				return 0 // work is waiting and nothing moves
			default:
				return v.p.Spec.ExpectedRate
			}
		}, core.AttachConfig{
			Interval: interval,
			Detector: detect.NewSpecDetector(p.Spec),
			Policy:   core.NotifyPersistent,
			// Enter/exit after two consecutive verdicts balances lag
			// against flapping at the default half-second probe.
			EnterAfter: 2,
			ExitAfter:  2,
		})
	}
	return v, nil
}

func nodeID(i int) string { return fmt.Sprintf("node-%d", i) }

// Node returns the i'th storage node.
func (v *Volume) Node(i int) *Node { return v.nodes[i] }

// Controller exposes the monitoring plane.
func (v *Volume) Controller() *core.Controller { return v.ctl }

// Diverted returns the number of replica writes redirected away from
// faulty nodes.
func (v *Volume) Diverted() uint64 { return v.diverted }

// Written returns completed logical block writes.
func (v *Volume) Written() uint64 { return v.written }

// ReadCount returns completed logical block reads.
func (v *Volume) ReadCount() uint64 { return v.read }

// Bookkeeping returns the number of placement records held.
func (v *Volume) Bookkeeping() int { return len(v.placements) }

// homeNodes returns the default replica set for the next block: a
// round-robin ring stripe.
func (v *Volume) homeNodes(block int64) []int {
	out := make([]int, v.p.Replication)
	for r := range out {
		out[r] = int((block + int64(r)) % int64(v.p.Nodes))
	}
	return out
}

// healthy reports whether the registry considers the node nominal.
func (v *Volume) healthy(i int) bool {
	return v.ctl.State(nodeID(i)) == spec.Nominal
}

// chooseTargets applies the policy to the home set.
func (v *Volume) chooseTargets(block int64) []int {
	home := v.homeNodes(block)
	if v.p.Policy == Static {
		return home
	}
	used := make(map[int]bool, v.p.Replication)
	targets := make([]int, 0, v.p.Replication)
	for _, h := range home {
		t := h
		if !v.healthy(t) {
			// Walk the ring for the nearest healthy, unused node; if the
			// whole ring is unhealthy, keep the home node (writing to a
			// stutterer beats not writing at all).
			for step := 1; step < v.p.Nodes; step++ {
				cand := (t + step) % v.p.Nodes
				if v.healthy(cand) && !used[cand] {
					t = cand
					v.diverted++
					break
				}
			}
		}
		// Avoid duplicate targets when diversion collides with another
		// replica.
		for used[t] {
			t = (t + 1) % v.p.Nodes
		}
		used[t] = true
		targets = append(targets, t)
	}
	return targets
}

// Write appends one logical block; onDone fires when every replica is
// durable. Under the adaptive policy with a WriteTimeout, a replica that
// does not acknowledge in time is re-issued to another node, so writers
// never wedge on a component that stops mid-request.
func (v *Volume) Write(onDone func()) {
	block := v.nextHome
	v.nextHome++
	targets := v.chooseTargets(block)
	if v.p.Policy == Adaptive {
		v.placements[block] = targets
	}
	pending := len(targets)
	replicaDone := func(finalNode int, replica int) {
		targets[replica] = finalNode
		pending--
		if pending == 0 {
			v.written++
			if onDone != nil {
				onDone()
			}
		}
	}
	for r := range targets {
		v.writeReplica(block, targets, r, 0, replicaDone)
	}
}

// writeReplica issues the write for targets[replica] with timeout-driven
// re-diversion; attempts are bounded by the node count. Diversions avoid
// nodes holding (or targeted by) the block's other replicas, so the
// copies stay on distinct nodes — co-located replicas would defeat
// replication. The shared targets slice (aliased by the placement map) is
// updated in place so sibling replicas see diversions immediately.
func (v *Volume) writeReplica(block int64, targets []int, replica, attempt int, done func(finalNode, replica int)) {
	node := targets[replica]
	finished := false
	v.nodes[node].write(block, v.p.BlockBytes, func() {
		if finished {
			return
		}
		finished = true
		done(node, replica)
	})
	if v.p.Policy != Adaptive || v.p.WriteTimeout <= 0 || attempt >= v.p.Nodes {
		return
	}
	v.s.After(v.p.WriteTimeout, func() {
		if finished {
			return
		}
		// The original may still land eventually; mark this attempt dead
		// for completion purposes and race a diverted copy. Block writes
		// are idempotent, so a late duplicate is harmless.
		finished = true
		taken := func(cand int) bool {
			for r, n := range targets {
				if r != replica && n == cand {
					return true
				}
			}
			return false
		}
		alt := -1
		for step := 1; step < v.p.Nodes; step++ {
			cand := (node + step) % v.p.Nodes
			if taken(cand) {
				continue
			}
			if v.healthy(cand) {
				alt = cand
				break
			}
			if alt < 0 {
				alt = cand // remember the first free node as a fallback
			}
		}
		if alt < 0 {
			// Every other node holds a sibling replica (tiny clusters):
			// retry the original home.
			alt = node
		}
		targets[replica] = alt
		v.diverted++
		v.writeReplica(block, targets, replica, attempt+1, done)
	})
}

// Read fetches a logical block; onDone fires at the first replica's
// response. Adaptive reads prefer healthy replicas and hedge after
// HedgeAfter.
func (v *Volume) Read(block int64, onDone func()) {
	if block < 0 || block >= v.nextHome {
		panic(fmt.Sprintf("wind: read of unwritten block %d", block))
	}
	replicas, ok := v.placements[block]
	if !ok {
		replicas = v.homeNodes(block)
	}
	// Order candidates: healthy first under the adaptive policy.
	order := append([]int(nil), replicas...)
	if v.p.Policy == Adaptive {
		healthyFirst := make([]int, 0, len(order))
		for _, r := range order {
			if v.healthy(r) {
				healthyFirst = append(healthyFirst, r)
			}
		}
		for _, r := range order {
			if !v.healthy(r) {
				healthyFirst = append(healthyFirst, r)
			}
		}
		order = healthyFirst
	}
	finished := false
	finish := func() {
		if finished {
			return
		}
		finished = true
		v.read++
		if onDone != nil {
			onDone()
		}
	}
	v.nodes[order[0]].read(block, v.p.BlockBytes, finish)
	if v.p.Policy == Adaptive && v.p.HedgeAfter > 0 && len(order) > 1 {
		v.s.After(v.p.HedgeAfter, func() {
			if !finished {
				v.nodes[order[1]].read(block, v.p.BlockBytes, finish)
			}
		})
	}
}

package wind

import (
	"fmt"
	"testing"

	"failstutter/internal/device"
	"failstutter/internal/faults"
	"failstutter/internal/sim"
	"failstutter/internal/spec"
)

const blockBytes = 4096

func flatNode(bw float64) NodeParams {
	return NodeParams{
		Disk: device.DiskParams{
			Name:           "wind-disk",
			CapacityBlocks: 1 << 22,
			BlockBytes:     blockBytes,
			Zones:          []device.Zone{{CapacityFrac: 1, Bandwidth: bw}},
			SeekTime:       0.0005,
			AgingFactor:    1,
		},
		LinkBandwidth: 10e6,
		LinkLatency:   0.0002,
	}
}

func mustVolume(s *sim.Simulator, policy Policy) *Volume {
	v, err := NewVolume(s, VolumeParams{
		Nodes:        6,
		Replication:  2,
		BlockBytes:   blockBytes,
		Policy:       policy,
		Spec:         spec.Spec{ExpectedRate: 1e6, Tolerance: 0.4, PromotionTimeout: 10},
		HedgeAfter:   0.05,
		WriteTimeout: 0.5,
	}, func(i int) NodeParams {
		np := flatNode(1e6)
		np.Disk.Name = fmt.Sprintf("wind-disk-%d", i)
		return np
	})
	if err != nil {
		panic(err)
	}
	return v
}

func TestVolumeValidation(t *testing.T) {
	s := sim.New()
	_, err := NewVolume(s, VolumeParams{Nodes: 2, Replication: 2, BlockBytes: 1,
		Spec: spec.Spec{ExpectedRate: 1, Tolerance: 0.1}}, func(int) NodeParams { return flatNode(1e6) })
	if err == nil {
		t.Fatal("Nodes == Replication accepted")
	}
	_, err = NewVolume(s, VolumeParams{Nodes: 4, Replication: 2, BlockBytes: 1,
		Spec: spec.Spec{}}, func(int) NodeParams { return flatNode(1e6) })
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// run drives n closed-loop writers until the horizon; returns completed
// writes.
func runWriteLoad(s *sim.Simulator, v *Volume, writers int, horizon float64) uint64 {
	for w := 0; w < writers; w++ {
		var loop func()
		loop = func() {
			if s.Now() >= horizon {
				return
			}
			v.Write(loop)
		}
		loop()
	}
	s.RunUntil(horizon)
	return v.Written()
}

func TestVolumeWritesReplicate(t *testing.T) {
	s := sim.New()
	v := mustVolume(s, Static)
	done := runWriteLoad(s, v, 4, 5)
	if done == 0 {
		t.Fatal("no writes completed")
	}
	// Every logical write lands Replication disk writes.
	var diskWrites uint64
	for i := 0; i < 6; i++ {
		diskWrites += v.Node(i).Disk().Writes()
	}
	if diskWrites < 2*done {
		t.Fatalf("disk writes %d < 2x logical %d", diskWrites, done)
	}
}

func TestVolumeAdaptiveDivertsFromStutterer(t *testing.T) {
	s := sim.New()
	v := mustVolume(s, Adaptive)
	// Node 0 degrades to 5% after 3 s.
	faults.StepAt{At: 3, Factor: 0.05}.Install(s, v.Node(0).Disk().Composite())
	done := runWriteLoad(s, v, 4, 20)
	if v.Diverted() == 0 {
		t.Fatal("no writes diverted despite a published stutterer")
	}
	if v.Controller().State("node-0") == spec.Nominal {
		t.Fatal("stutterer never published")
	}
	if done == 0 {
		t.Fatal("no writes completed")
	}
	if v.Bookkeeping() == 0 {
		t.Fatal("adaptive volume recorded no placements")
	}
}

func TestVolumeAdaptiveBeatsStaticUnderStutter(t *testing.T) {
	run := func(policy Policy) uint64 {
		s := sim.New()
		v := mustVolume(s, policy)
		faults.StepAt{At: 2, Factor: 0.05}.Install(s, v.Node(0).Disk().Composite())
		return runWriteLoad(s, v, 4, 20)
	}
	static := run(Static)
	adaptive := run(Adaptive)
	if adaptive*2 < static*3 {
		t.Fatalf("adaptive %d writes not clearly above static %d under a stutterer",
			adaptive, static)
	}
}

func TestVolumeSurvivesCrashAdaptively(t *testing.T) {
	s := sim.New()
	v := mustVolume(s, Adaptive)
	faults.CrashAt{At: 2}.Install(s, v.Node(0).Disk().Composite())
	done := runWriteLoad(s, v, 4, 25)
	if done == 0 {
		t.Fatal("no writes completed")
	}
	if v.Controller().State("node-0") != spec.AbsoluteFaulty {
		t.Fatalf("dead node state = %v", v.Controller().State("node-0"))
	}
	// Writes after promotion must divert, so throughput continues.
	if v.Diverted() == 0 {
		t.Fatal("no diversion after node death")
	}
}

func TestVolumeReadsAndHedging(t *testing.T) {
	s := sim.New()
	v := mustVolume(s, Adaptive)
	writes := 0
	for i := 0; i < 50; i++ {
		v.Write(func() { writes++ })
	}
	// The controller's probes reschedule forever, so volume simulations
	// are always driven with RunUntil, never Run.
	s.RunUntil(10)
	if writes != 50 {
		t.Fatalf("writes = %d", writes)
	}
	// Stall node 0 completely; reads of blocks homed there must still
	// complete via replica or hedge.
	faults.Static{Factor: 0}.Install(s, v.Node(0).Disk().Composite())
	reads := 0
	for b := int64(0); b < 50; b++ {
		v.Read(b, func() { reads++ })
	}
	s.RunUntil(s.Now() + 30)
	if reads != 50 {
		t.Fatalf("reads completed = %d of 50 with one node stalled", reads)
	}
}

func TestVolumeReadUnwrittenPanics(t *testing.T) {
	s := sim.New()
	v := mustVolume(s, Static)
	defer func() {
		if recover() == nil {
			t.Fatal("read of unwritten block did not panic")
		}
	}()
	v.Read(0, nil)
}

func TestPolicyString(t *testing.T) {
	if Static.String() != "static" || Adaptive.String() != "adaptive" {
		t.Fatal("policy names wrong")
	}
}

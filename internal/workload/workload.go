// Package workload provides the drivers and generators for the
// experiment suite: the CM-5-style all-to-all transpose over a simulated
// switch, task-set generators for the distributed-sort experiments, and
// an open-loop request source feeding the availability meter.
package workload

import (
	"fmt"
	"math"

	"failstutter/internal/device"
	"failstutter/internal/sim"
	"failstutter/internal/trace"
)

// Transpose drives an all-to-all personalized exchange on a switch, the
// communication pattern of Brewer & Kuszmaul's CM-5 study: in round k,
// node i sends its block to node (i+k) mod N, a schedule that is
// contention-free when every receiver keeps up. It returns the virtual
// time from start until every message has drained. The caller owns any
// fault injection on the switch and must not have other traffic running.
func Transpose(s *sim.Simulator, sw *device.Switch, msgBytes float64) sim.Duration {
	n := sw.Params().Ports
	start := s.Now()
	totalMsgs := n * (n - 1)
	delivered := 0
	var finish sim.Time
	for i := 0; i < n; i++ {
		var msgs []device.Message
		for k := 1; k < n; k++ {
			dst := (i + k) % n
			msgs = append(msgs, device.Message{
				Dst:  dst,
				Size: msgBytes,
				OnDelivered: func() {
					delivered++
					if delivered == totalMsgs {
						finish = s.Now()
					}
				},
			})
		}
		sw.Sender(i).Enqueue(msgs, nil)
	}
	s.Run()
	if delivered != totalMsgs {
		panic(fmt.Sprintf("workload: transpose delivered %d of %d messages", delivered, totalMsgs))
	}
	return finish - start
}

// TransposeSharded drives the same all-to-all personalized exchange on a
// sharded switch: enqueues are identical, but completion is detected at
// the coordinator's barrier — the single-threaded point with a consistent
// view of every receiver — by watching total delivered bytes, and the
// finish instant is the latest drain completion across ports, which is an
// event time and therefore identical at every shard count. The caller
// owns fault injection and must not have other traffic or a competing
// barrier hook running.
func TransposeSharded(ss *sim.ShardedSimulator, sw *device.Switch, msgBytes float64) sim.Duration {
	n := sw.Params().Ports
	start := ss.Now()
	total := float64(n*(n-1)) * msgBytes
	for i := 0; i < n; i++ {
		var msgs []device.Message
		for k := 1; k < n; k++ {
			msgs = append(msgs, device.Message{Dst: (i + k) % n, Size: msgBytes})
		}
		sw.Sender(i).Enqueue(msgs, nil)
	}
	done := false
	var finish sim.Time
	ss.SetBarrier(func(h sim.Time) {
		if !done && sw.TotalDelivered() >= total {
			done = true
			finish = sw.LastDeliveredAt()
		}
	})
	ss.Run()
	ss.SetBarrier(nil)
	if !done {
		panic(fmt.Sprintf("workload: sharded transpose delivered %v of %v bytes", sw.TotalDelivered(), total))
	}
	return finish - start
}

// TransposeShardedBandwidth runs TransposeSharded and returns aggregate
// delivered bandwidth in bytes/second.
func TransposeShardedBandwidth(ss *sim.ShardedSimulator, sw *device.Switch, msgBytes float64) float64 {
	n := sw.Params().Ports
	elapsed := TransposeSharded(ss, sw, msgBytes)
	if elapsed <= 0 {
		return math.Inf(1)
	}
	return float64(n*(n-1)) * msgBytes / elapsed
}

// TransposeBandwidth runs Transpose and returns aggregate delivered
// bandwidth in bytes/second.
func TransposeBandwidth(s *sim.Simulator, sw *device.Switch, msgBytes float64) float64 {
	n := sw.Params().Ports
	elapsed := Transpose(s, sw, msgBytes)
	if elapsed <= 0 {
		return math.Inf(1)
	}
	return float64(n*(n-1)) * msgBytes / elapsed
}

// SortUnits returns the abstract work units for sorting n records —
// proportional to n log2 n, normalized so that scale records cost scale
// units. It shapes the distributed-sort task sets.
func SortUnits(n, scale int) int {
	if n <= 1 {
		return 1
	}
	raw := float64(n) * math.Log2(float64(n))
	norm := float64(scale) * math.Log2(float64(scale))
	u := int(math.Round(raw / norm * float64(scale)))
	if u < 1 {
		u = 1
	}
	return u
}

// OpenLoopParams configures an open-loop request source: requests of the
// given size arrive at fixed spacing regardless of completions (offered
// load, in Gray & Reuter's sense) and are recorded against an
// availability threshold.
type OpenLoopParams struct {
	// Interval is the arrival spacing in seconds.
	Interval sim.Duration
	// RequestSize is the per-request work in station units.
	RequestSize float64
	// Count is the number of requests to offer.
	Count int
	// Threshold is the acceptable response time.
	Threshold sim.Duration
}

// OpenLoop drives a station with an open-loop arrival stream and returns
// the availability meter after the caller runs the simulation. Requests
// lost to an absolute failure stay unaccounted as completions and
// therefore count against availability — exactly the metric's intent.
func OpenLoop(s *sim.Simulator, st *sim.Station, p OpenLoopParams) *trace.AvailabilityMeter {
	if p.Interval <= 0 || p.RequestSize <= 0 || p.Count < 1 || p.Threshold <= 0 {
		panic(fmt.Sprintf("workload: invalid open-loop params %+v", p))
	}
	meter := trace.NewAvailabilityMeter(p.Threshold)
	for i := 0; i < p.Count; i++ {
		at := sim.Time(i) * p.Interval
		s.At(at, func() {
			meter.Offered()
			st.SubmitFunc(p.RequestSize, func(r *sim.Request) {
				meter.Completed(r.Latency())
			})
		})
	}
	return meter
}

package workload

import (
	"math"
	"testing"

	"failstutter/internal/device"
	"failstutter/internal/sim"
)

func newSwitch(s *sim.Simulator, ports int, drain float64) *device.Switch {
	return device.NewSwitch(s, device.SwitchParams{
		Ports:       ports,
		LinkRate:    1000,
		DrainRate:   drain,
		BufferBytes: 100,
	})
}

func TestTransposeCompletesAndTimes(t *testing.T) {
	s := sim.New()
	sw := newSwitch(s, 4, 1000)
	elapsed := Transpose(s, sw, 50)
	if elapsed <= 0 {
		t.Fatalf("elapsed = %v", elapsed)
	}
	// 4 nodes x 3 messages x 50 bytes = 600 bytes; links and drains at
	// 1000 B/s with 4-way parallelism: roughly 3 rounds x 0.1 s.
	if elapsed > 1 {
		t.Fatalf("healthy transpose took %v, far beyond nominal", elapsed)
	}
	if got := sw.TotalDelivered(); got != 600 {
		t.Fatalf("delivered %v bytes, want 600", got)
	}
}

func TestTransposeSlowReceiverCollapses(t *testing.T) {
	// The CM-5 observation: one receiver at a fraction of link rate drags
	// the whole all-to-all down by roughly the messages-per-receiver
	// factor.
	healthyS := sim.New()
	healthy := TransposeBandwidth(healthyS, newSwitch(healthyS, 8, 1000), 50)

	slowS := sim.New()
	sw := newSwitch(slowS, 8, 1000)
	sw.ReceiverComposite(3).Set("slow", 0.1)
	slowed := TransposeBandwidth(slowS, sw, 50)

	ratio := healthy / slowed
	if ratio < 2 {
		t.Fatalf("slow receiver only cost %.2fx; flow-control collapse absent", ratio)
	}
}

func TestTransposeBandwidthMonotoneInDrainRate(t *testing.T) {
	prev := math.Inf(1)
	for _, drain := range []float64{1000, 500, 250} {
		s := sim.New()
		bw := TransposeBandwidth(s, newSwitch(s, 4, drain), 50)
		if bw > prev+1e-9 {
			t.Fatalf("bandwidth not monotone in drain rate: %v then %v", prev, bw)
		}
		prev = bw
	}
}

func TestSortUnitsShape(t *testing.T) {
	if SortUnits(0, 100) != 1 || SortUnits(1, 100) != 1 {
		t.Fatal("degenerate sort units wrong")
	}
	if SortUnits(100, 100) != 100 {
		t.Fatalf("self-scale = %d, want 100", SortUnits(100, 100))
	}
	// Superlinear: doubling records more than doubles units.
	if SortUnits(200, 100) <= 2*SortUnits(100, 100) {
		t.Fatalf("sort units not superlinear: %d vs %d", SortUnits(200, 100), SortUnits(100, 100))
	}
}

func TestOpenLoopAvailability(t *testing.T) {
	s := sim.New()
	st := sim.NewStation(s, "svc", 10)
	meter := OpenLoop(s, st, OpenLoopParams{
		Interval:    1,
		RequestSize: 5, // 0.5 s service, well within threshold
		Count:       20,
		Threshold:   1,
	})
	s.Run()
	if got := meter.Availability(); got != 1 {
		t.Fatalf("healthy availability = %v, want 1", got)
	}
}

func TestOpenLoopDegradedAvailability(t *testing.T) {
	s := sim.New()
	st := sim.NewStation(s, "svc", 10)
	meter := OpenLoop(s, st, OpenLoopParams{
		Interval: 1, RequestSize: 5, Count: 20, Threshold: 1,
	})
	// Halve the service rate for the middle of the run: queue builds,
	// latencies blow through the threshold.
	s.At(5, func() { st.SetMultiplier(0.25) })
	s.At(12, func() { st.SetMultiplier(1) })
	s.Run()
	got := meter.Availability()
	if got >= 0.9 || got <= 0.1 {
		t.Fatalf("degraded availability = %v, want meaningful partial loss", got)
	}
}

func TestOpenLoopFailureCountsAgainstAvailability(t *testing.T) {
	s := sim.New()
	st := sim.NewStation(s, "svc", 10)
	meter := OpenLoop(s, st, OpenLoopParams{
		Interval: 1, RequestSize: 5, Count: 10, Threshold: 1,
	})
	s.At(4.6, st.Fail)
	s.Run()
	// Requests at t=0..4 completed (service 0.5 s); everything later died
	// with the station.
	if got := meter.Availability(); got != 0.5 {
		t.Fatalf("availability after failure = %v, want 0.5", got)
	}
}

func TestOpenLoopInvalidParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params did not panic")
		}
	}()
	OpenLoop(sim.New(), sim.NewStation(sim.New(), "x", 1), OpenLoopParams{})
}

// Integration tests across the public API: each test wires several layers
// together the way a downstream user would — devices + faults + detection
// + adaptation — and checks the end-to-end behaviour the fail-stutter
// model promises.
package failstutter_test

import (
	"fmt"
	"testing"

	"failstutter"
	"failstutter/internal/faults"
)

// buildPairs constructs mirror pairs over flat disks at the given rates.
func buildPairs(s *failstutter.Simulator, rates []float64) []*failstutter.MirrorPair {
	pairs := make([]*failstutter.MirrorPair, len(rates))
	for i, r := range rates {
		p := failstutter.DiskParams{
			Name:           fmt.Sprintf("it-p%d-a", i),
			CapacityBlocks: 1 << 22,
			BlockBytes:     4096,
			Zones:          []failstutter.DiskZone{{CapacityFrac: 1, Bandwidth: r}},
			SeekTime:       0.002,
			AgingFactor:    1,
		}
		a, err := failstutter.NewDisk(s, p)
		if err != nil {
			panic(err)
		}
		p.Name = fmt.Sprintf("it-p%d-b", i)
		b, err := failstutter.NewDisk(s, p)
		if err != nil {
			panic(err)
		}
		pairs[i] = failstutter.NewMirrorPair(s, i, a, b)
	}
	return pairs
}

func TestPublicAPIScenarioPipeline(t *testing.T) {
	// The paper's worked example through the facade only.
	s := failstutter.NewSimulator()
	a := failstutter.NewArray(s, buildPairs(s, []float64{1e6, 1e6, 1e6, 0.25e6}), 4096)
	res, err := failstutter.WriteAndMeasure(s, a, failstutter.AdaptivePull{Depth: 2}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	want := 3.25e6
	if res.Throughput < 0.9*want {
		t.Fatalf("adaptive throughput %v, want ~%v", res.Throughput, want)
	}
}

func TestPublicAPIDetectionLoop(t *testing.T) {
	// Disk stutters; controller detects and publishes; a subscriber sees
	// the transition — the full loop via the facade.
	s := failstutter.NewSimulator()
	disk, err := failstutter.NewDisk(s, failstutter.HawkParams("it-hawk"))
	if err != nil {
		t.Fatal(err)
	}
	var refill func(block int64)
	refill = func(block int64) {
		if block+256 > disk.Params().CapacityBlocks {
			block = 0
		}
		disk.Read(block, 256, func(float64) { refill(block + 256) })
	}
	refill(0)
	s.At(30, func() { disk.Composite().Set("fault", 0.3) })

	ctl := failstutter.NewController(s)
	ctl.Watch("it-hawk", disk.BytesCompleted, failstutter.AttachConfig{
		Interval: 1,
		Detector: failstutter.NewSpecDetector(failstutter.Spec{
			ExpectedRate: 5.5e6, Tolerance: 0.3, PromotionTimeout: 30,
		}),
		Policy: failstutter.NotifyPersistent,
	})
	var events []failstutter.RegistryEvent
	ctl.Registry().Subscribe(func(e failstutter.RegistryEvent) { events = append(events, e) })
	s.RunUntil(60)
	if len(events) != 1 {
		t.Fatalf("events = %d, want exactly the persistent transition", len(events))
	}
	if events[0].To != failstutter.PerfFaulty || events[0].At < 30 || events[0].At > 40 {
		t.Fatalf("unexpected event %+v", events[0])
	}
	if ctl.State("it-hawk") != failstutter.PerfFaulty {
		t.Fatalf("state = %v", ctl.State("it-hawk"))
	}
}

func TestPublicAPIPromotionToAbsolute(t *testing.T) {
	s := failstutter.NewSimulator()
	disk, err := failstutter.NewDisk(s, failstutter.HawkParams("it-dies"))
	if err != nil {
		t.Fatal(err)
	}
	var refill func(block int64)
	refill = func(block int64) {
		if block+256 > disk.Params().CapacityBlocks {
			block = 0
		}
		disk.Read(block, 256, func(float64) { refill(block + 256) })
	}
	refill(0)
	faults.CrashAt{At: 20}.Install(s, disk.Composite())

	ctl := failstutter.NewController(s)
	ctl.Watch("it-dies", disk.BytesCompleted, failstutter.AttachConfig{
		Interval: 1,
		Detector: failstutter.NewSpecDetector(failstutter.Spec{
			ExpectedRate: 5.5e6, Tolerance: 0.3, PromotionTimeout: 10,
		}),
	})
	s.RunUntil(60)
	if ctl.State("it-dies") != failstutter.AbsoluteFaulty {
		t.Fatalf("state = %v, want absolute after sustained silence", ctl.State("it-dies"))
	}
}

func TestPublicAPIClusterSchedulers(t *testing.T) {
	const quantum = 50e-6
	run := func(name string) failstutter.SchedulerReport {
		for _, sched := range failstutter.Schedulers() {
			if sched.Name() != name {
				continue
			}
			pool := failstutter.NewPool(failstutter.NewSimulator(), 4, quantum)
			pool.Workers()[0].SetSpeed(0.25)
			return sched.Run(pool, failstutter.UniformTasks(48, 60))
		}
		t.Fatalf("scheduler %q not in facade set", name)
		return failstutter.SchedulerReport{}
	}
	static, queue := run("static-partition"), run("work-queue")
	if queue.Makespan*2 > static.Makespan {
		t.Fatalf("work queue %v not clearly below static %v via facade",
			queue.Makespan, static.Makespan)
	}
	// The cluster plane runs on the virtual-time kernel: a repeated run is
	// bitwise identical, not merely statistically close.
	if again := run("work-queue"); again.String() != queue.String() || again.Makespan != queue.Makespan {
		t.Fatalf("work-queue report not reproducible:\n%v\n%v", queue, again)
	}
}

func TestPublicAPIRiverQueue(t *testing.T) {
	s := failstutter.NewSimulator()
	dq := failstutter.NewRiverQueue(s, failstutter.RiverQueueParams{
		Consumers: 4, ConsumerRate: 100, QueueCap: 4,
		Policy: failstutter.RiverCreditBased,
	})
	dq.ConsumerComposite(0).Set("slow", 0.1)
	var makespan float64
	dq.Produce(2000, func(m float64) { makespan = m; s.Stop() })
	s.Run()
	available := 2000.0 / (3.1 * 100)
	if makespan > 1.2*available {
		t.Fatalf("river queue makespan %v, available ideal %v", makespan, available)
	}
}

func TestPublicAPIExperimentsRegistry(t *testing.T) {
	// The exact roster is asserted by the experiments package's own
	// registry test; the facade just needs the full suite visible.
	all := failstutter.Experiments()
	if len(all) < 30 {
		t.Fatalf("experiments = %d, want the full suite", len(all))
	}
	e, err := failstutter.GetExperiment("E01")
	if err != nil {
		t.Fatal(err)
	}
	tbl := e.Run(failstutter.ExperimentConfig{Seed: 1, Quick: true})
	if v := tbl.MustMetric("rel_error"); v > 0.05 {
		t.Fatalf("E01 via facade: rel error %v", v)
	}
}

func TestPublicAPIReconstruction(t *testing.T) {
	s := failstutter.NewSimulator()
	pairs := buildPairs(s, []float64{1e6, 1e6})
	a := failstutter.NewArray(s, pairs, 4096)
	spareParams := failstutter.DiskParams{
		Name: "it-spare", CapacityBlocks: 1 << 22, BlockBytes: 4096,
		Zones:       []failstutter.DiskZone{{CapacityFrac: 1, Bandwidth: 1e6}},
		SeekTime:    0.002,
		AgingFactor: 1,
	}
	spare, err := failstutter.NewDisk(s, spareParams)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := false
	failstutter.EnableReconstruction(a, failstutter.NewSparePool(spare), 128,
		func(failstutter.ReconEvent) { rebuilt = true })
	if _, err := failstutter.WriteAndMeasure(s, a, failstutter.StaticEqual{}, 500); err != nil {
		t.Fatal(err)
	}
	a.Pairs()[0].A.Fail()
	s.Run()
	if !rebuilt {
		t.Fatal("hot-spare rebuild did not complete via facade")
	}
}

// Clustersort: a distributed sort on real goroutines, with a CPU hog.
//
// Four workers sort a partitioned record space. Mid-job, a competing
// process lands on worker 0 and takes half its CPU — the NOW-Sort
// interference the paper surveys ("a node with excess CPU load reduces
// global sorting performance by a factor of two"). Six schedulers of
// increasing fail-stutter awareness run the identical job:
//
//	static-partition   fail-stop design: fixed equal chunks
//	gauged-partition   scenario 2: probe speeds once, split proportionally
//	work-queue         River-style pull
//	hedged             pull + tail cloning
//	reissue            Shasha-Turek slow-down reissue with reconcile
//	detect-avoid       fail-stutter loop: detect, flag, migrate backlog
//
// Run with: go run ./examples/clustersort
package main

import (
	"fmt"
	"time"

	"failstutter"
	"failstutter/internal/workload"
)

func main() {
	const (
		workers    = 4
		partitions = 64
		quantum    = 50 * time.Microsecond
	)
	// Partition the record space; task cost follows n log n.
	records := 1 << 20
	perPart := records / partitions
	units := workload.SortUnits(perPart, perPart) / 400
	tasks := failstutter.UniformTasks(partitions, units)
	fmt.Printf("sorting %d records in %d partitions (%d work units each) on %d workers\n\n",
		records, partitions, units, workers)

	fmt.Println("healthy cluster:")
	for _, sched := range failstutter.Schedulers() {
		pool := failstutter.NewPool(workers, quantum)
		r := sched.Run(pool, tasks)
		fmt.Printf("  %-18s %8v\n", r.Scheduler, r.Makespan.Round(time.Millisecond))
	}

	fmt.Println("\nCPU hog lands on worker 0 ten milliseconds in (50% CPU for the rest of the job):")
	for _, sched := range failstutter.Schedulers() {
		pool := failstutter.NewPool(workers, quantum)
		timer := time.AfterFunc(10*time.Millisecond, func() { pool.Workers()[0].SetSpeed(0.5) })
		r := sched.Run(pool, tasks)
		timer.Stop()
		extra := ""
		if r.Duplicates > 0 {
			extra = fmt.Sprintf("  (%d duplicate launches, %d units wasted)", r.Duplicates, r.WastedUnits)
		}
		fmt.Printf("  %-18s %8v%s\n", r.Scheduler, r.Makespan.Round(time.Millisecond), extra)
	}

	fmt.Println("\nsevere mid-job slow-down failure (worker 0 drops to 2%):")
	for _, name := range []string{"work-queue", "reissue"} {
		for _, sched := range failstutter.Schedulers() {
			if sched.Name() != name {
				continue
			}
			pool := failstutter.NewPool(workers, quantum)
			timer := time.AfterFunc(10*time.Millisecond, func() { pool.Workers()[0].SetSpeed(0.02) })
			r := sched.Run(pool, tasks)
			timer.Stop()
			pool.Workers()[0].SetSpeed(1)
			fmt.Printf("  %-18s %8v  (wasted %d units of %d total)\n",
				r.Scheduler, r.Makespan.Round(time.Millisecond),
				r.WastedUnits, partitions*units)
		}
	}
	fmt.Println("\nthe pull-based and reissue designs shed the stutterer; the static design tracks it")
}

// Clustersort: a distributed sort in virtual time, with a CPU hog.
//
// Four workers sort a partitioned record space on the discrete-event
// kernel. Mid-job, a competing process lands on worker 0 and takes half
// its CPU — the NOW-Sort interference the paper surveys ("a node with
// excess CPU load reduces global sorting performance by a factor of
// two"). Six schedulers of increasing fail-stutter awareness run the
// identical job:
//
//	static-partition   fail-stop design: fixed equal chunks
//	gauged-partition   scenario 2: probe speeds once, split proportionally
//	work-queue         River-style pull
//	hedged             pull + tail cloning
//	reissue            Shasha-Turek slow-down reissue with reconcile
//	detect-avoid       fail-stutter loop: detect, flag, migrate backlog
//
// Every run is deterministic: the makespans below are exact functions of
// the configuration, reproducible to the last digit.
//
// Run with: go run ./examples/clustersort
package main

import (
	"fmt"

	"failstutter"
	"failstutter/internal/workload"
)

func main() {
	const (
		workers    = 4
		partitions = 64
		quantum    = 50e-6 // 50 virtual microseconds per work unit
	)
	// Partition the record space; task cost follows n log n.
	records := 1 << 20
	perPart := records / partitions
	units := workload.SortUnits(perPart, perPart)
	tasks := failstutter.UniformTasks(partitions, units)
	fmt.Printf("sorting %d records in %d partitions (%d work units each) on %d workers\n\n",
		records, partitions, units, workers)

	fmt.Println("healthy cluster:")
	for _, sched := range failstutter.Schedulers() {
		pool := failstutter.NewPool(failstutter.NewSimulator(), workers, quantum)
		r := sched.Run(pool, tasks)
		fmt.Printf("  %-18s %9.3fs\n", r.Scheduler, r.Makespan)
	}

	// The hog lands a tenth of the way into the healthy-case job.
	hogAt := float64(partitions*units) * quantum / workers / 10

	fmt.Println("\nCPU hog lands on worker 0 early in the job (50% CPU for the rest of it):")
	for _, sched := range failstutter.Schedulers() {
		s := failstutter.NewSimulator()
		pool := failstutter.NewPool(s, workers, quantum)
		s.After(hogAt, func() { pool.Workers()[0].SetSpeed(0.5) })
		r := sched.Run(pool, tasks)
		extra := ""
		if r.Duplicates > 0 {
			extra = fmt.Sprintf("  (%d duplicate launches, %.0f units wasted)", r.Duplicates, r.WastedUnits)
		}
		fmt.Printf("  %-18s %9.3fs%s\n", r.Scheduler, r.Makespan, extra)
	}

	fmt.Println("\nsevere mid-job slow-down failure (worker 0 drops to 2%):")
	for _, name := range []string{"work-queue", "reissue"} {
		for _, sched := range failstutter.Schedulers() {
			if sched.Name() != name {
				continue
			}
			s := failstutter.NewSimulator()
			pool := failstutter.NewPool(s, workers, quantum)
			s.After(hogAt, func() { pool.Workers()[0].SetSpeed(0.02) })
			r := sched.Run(pool, tasks)
			fmt.Printf("  %-18s %9.3fs  (wasted %.0f units of %d total)\n",
				r.Scheduler, r.Makespan, r.WastedUnits, partitions*units)
		}
	}
	fmt.Println("\nthe pull-based and reissue designs shed the stutterer; the static design tracks it")
}

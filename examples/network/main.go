// Network: flow-control collapse, detection, and River-style shedding.
//
// Part 1 reproduces the CM-5 observation on a simulated crossbar: an
// all-to-all transpose among eight nodes, with one receiver draining at a
// third of link rate. Head-of-line blocking on the bounded output buffers
// spreads that one deficit to every sender — aggregate bandwidth drops
// ~3x. A peer-relative detector watching per-port delivery counters
// identifies the culprit without any prior specification.
//
// Part 2 shows the fail-stutter response at the application layer: the
// same records streamed through a River distributed queue reach the
// available bandwidth because back-pressure routes work away from the
// slow consumer instead of waiting on it.
//
// Run with: go run ./examples/network
package main

import (
	"fmt"

	"failstutter"
	"failstutter/internal/river"
	"failstutter/internal/workload"
)

func transposeDemo(slow bool) float64 {
	s := failstutter.NewSimulator()
	sw := failstutter.NewSwitch(s, failstutter.SwitchParams{
		Ports:       8,
		LinkRate:    1e6,
		DrainRate:   1e6,
		BufferBytes: 512 * 1024,
	})
	if slow {
		sw.ReceiverComposite(3).Set("slow", 0.33)
	}

	// Watch each receiver's delivered bytes with a peer-relative detector:
	// no specs needed, divergence is the signal. Verdicts are evaluated
	// mid-flight, while the transfer is actually running.
	peers := failstutter.NewPeerSet(failstutter.PeerConfig{
		WindowSamples: 4, Threshold: 0.6, MinPeers: 4,
	})
	// Head-of-line blocking couples every port's rate to the stutterer's,
	// so healthy ports occasionally look slow too — the persistence of a
	// flag, not its existence, identifies the real culprit.
	flagCounts := make([]int, 8)
	last := make([]float64, 8)
	var tick func()
	tick = func() {
		for port := 0; port < 8; port++ {
			cur := sw.DeliveredBytes(port)
			peers.Observe(fmt.Sprintf("port-%d", port), s.Now(), cur-last[port])
			last[port] = cur
		}
		for port := 0; port < 8; port++ {
			if peers.Verdict(fmt.Sprintf("port-%d", port), s.Now()) == failstutter.PerfFaulty {
				flagCounts[port]++
			}
		}
		if s.Now() < 4 {
			s.After(0.1, tick)
		}
	}
	s.After(0.1, tick)

	bw := workload.TransposeBandwidth(s, sw, 256*1024)
	if slow {
		culprit, best := -1, 0
		for port, n := range flagCounts {
			if n > best {
				culprit, best = port, n
			}
		}
		fmt.Printf("  peer-relative detector: port-%d flagged in %d samples (most of any port)\n",
			culprit, best)
	}
	return bw
}

func main() {
	fmt.Println("all-to-all transpose, 8 nodes, bounded switch buffers:")
	healthy := transposeDemo(false)
	fmt.Printf("  healthy aggregate bandwidth: %.1f MB/s\n", healthy/1e6)
	slowed := transposeDemo(true)
	fmt.Printf("  with one receiver at 33%%:    %.1f MB/s  (%.1fx collapse)\n\n",
		slowed/1e6, healthy/slowed)

	fmt.Println("same imbalance at the application layer, via a River distributed queue:")
	for _, policy := range []river.Policy{river.RoundRobin, river.CreditBased} {
		s := failstutter.NewSimulator()
		dq := river.NewDQ(s, river.DQParams{
			Consumers: 4, ConsumerRate: 100, QueueCap: 4,
			Policy: policy, RNG: failstutter.NewRNG(1),
		})
		dq.ConsumerComposite(0).Set("slow", 0.33)
		var makespan float64
		dq.Produce(4000, func(m float64) { makespan = m; s.Stop() })
		s.Run()
		fmt.Printf("  %-13s %7.1f s for 4000 records (available-bandwidth ideal %.1f s)\n",
			policy, makespan, 4000/(3.33*100))
	}
	fmt.Println("\nthe static design waits on the stutterer; back-pressure simply flows around it")
}

// DHT: a replicated hash table riding out garbage-collection stutter.
//
// Four storage nodes hold two replicas of every key. Node 0 suffers
// periodic garbage-collection pauses — Gribble et al.'s observation that
// "untimely garbage collection causes one node to fall behind its mirror
// ... one machine over-saturates and thus is the bottleneck".
//
// Three configurations run the same closed-loop put workload, each on its
// own virtual-time simulator (500 virtual milliseconds of load,
// deterministic to the last put):
//
//	baseline    no GC, synchronous replication
//	fail-stop   GC + synchronous replication: throughput collapses
//	fail-stutter GC + adaptive acks: the peer-relative detector flags the
//	            stutterer and puts are acknowledged by the healthy
//	            replica, with delivery to the flagged one deferred
//	            (hinted handoff, counted as redundancy debt)
//
// Run with: go run ./examples/dht
package main

import (
	"fmt"

	"failstutter"
)

func run(gc, adaptive bool) (puts int64, hints int64) {
	s := failstutter.NewSimulator()
	d := failstutter.NewDHT(s, failstutter.DHTParams{
		Nodes:       4,
		Replication: 2,
		OpQuantum:   50e-6, // 50 virtual microseconds per operation
		Adaptive:    adaptive,
		SampleEvery: 1e-3,
	})
	if gc {
		cancel := d.StartGC(0, 40e-3, 35e-3)
		defer cancel()
	}
	puts = d.RunLoad(8, 500e-3)
	return puts, d.Hints()
}

func main() {
	fmt.Println("replicated DHT: 4 nodes, 2 replicas per key, 8 closed-loop clients, 500 virtual ms")
	base, _ := run(false, false)
	fmt.Printf("  %-34s %6d puts  (1.00x)\n", "baseline (no GC, synchronous)", base)

	sync, _ := run(true, false)
	fmt.Printf("  %-34s %6d puts  (%.2fx)   <- one GC-ing node bottlenecks everything\n",
		"GC on node 0, synchronous", sync, float64(sync)/float64(base))

	adaptive, hints := run(true, true)
	fmt.Printf("  %-34s %6d puts  (%.2fx)   with %d hinted handoffs outstanding\n",
		"GC on node 0, adaptive acks", adaptive, float64(adaptive)/float64(base), hints)

	fmt.Println("\nthe adaptive design trades momentary redundancy (hints) for availability,")
	fmt.Println("exactly the fail-stutter bargain: use the performance-faulty component for")
	fmt.Println("what it can still do, without letting it set the pace of the whole system")
}

// Storage: the paper's Section 3.2 worked example, end to end.
//
// A RAID-10 array of four mirror pairs writes a large batch of blocks
// under three designs of increasing fail-stutter awareness:
//
//	scenario 1  static equal striping     (fail-stop assumptions)
//	scenario 2  install-time gauged ratios
//	scenario 3  continuous adaptation     (pull and wave variants)
//
// Three fault regimes are applied: a static slow pair, performance drift
// after installation, and a recurring severe stutter. The output shows
// who wins where — and what the adaptive design pays in bookkeeping.
// Finally, a disk is fail-stopped to show hot-spare reconstruction
// coexisting with the performance-fault machinery.
//
// Run with: go run ./examples/storage
package main

import (
	"fmt"

	"failstutter"
	"failstutter/internal/faults"
)

const (
	pairCount  = 4
	blockBytes = 4096
	healthyBW  = 1e6    // bytes/s per disk
	slowBW     = 0.25e6 // the "b" of the paper's example
	jobBlocks  = 6000
)

func buildArray(s *failstutter.Simulator, slowLast bool) *failstutter.Array {
	pairs := make([]*failstutter.MirrorPair, pairCount)
	for i := range pairs {
		bw := healthyBW
		if slowLast && i == pairCount-1 {
			bw = slowBW
		}
		p := failstutter.HawkParams(fmt.Sprintf("pair%d-a", i))
		p.Zones = []failstutter.DiskZone{{CapacityFrac: 1, Bandwidth: bw}}
		p.SeekTime = 0.002
		a, err := failstutter.NewDisk(s, p)
		if err != nil {
			panic(err)
		}
		p.Name = fmt.Sprintf("pair%d-b", i)
		b, err := failstutter.NewDisk(s, p)
		if err != nil {
			panic(err)
		}
		pairs[i] = failstutter.NewMirrorPair(s, i, a, b)
	}
	return failstutter.NewArray(s, pairs, blockBytes)
}

func run(title string, slowLast bool, striper failstutter.Striper, inject func(*failstutter.Simulator, *failstutter.Array)) {
	s := failstutter.NewSimulator()
	a := buildArray(s, slowLast)
	if inject != nil {
		inject(s, a)
	}
	res, err := failstutter.WriteAndMeasure(s, a, striper, jobBlocks)
	if err != nil {
		fmt.Printf("  %-28s FAILED: %v\n", title, err)
		return
	}
	fmt.Printf("  %-28s %7.2f MB/s   shares %v   bookkeeping %d\n",
		title, res.Throughput/1e6, res.PerPair, res.Bookkeeping)
}

func main() {
	fmt.Println("Scenario: one pair at 0.25 MB/s among three at 1 MB/s")
	fmt.Printf("  paper predicts: static N*b = %.2f MB/s, gauged/adaptive (N-1)B+b = %.2f MB/s\n",
		4*slowBW/1e6, (3*healthyBW+slowBW)/1e6)
	run("scenario 1: static equal", true, failstutter.StaticEqual{}, nil)
	run("scenario 2: gauged", true, failstutter.GaugedProportional{ProbeBlocks: 32}, nil)
	run("scenario 3: adaptive pull", true, failstutter.AdaptivePull{Depth: 2}, nil)
	run("scenario 3: adaptive wave", true, failstutter.AdaptiveWave{Interval: 0.25, WaveBlocks: 400}, nil)

	fmt.Println("\nDrift after installation: all pairs gauge healthy, then pair 0 degrades")
	drift := func(s *failstutter.Simulator, a *failstutter.Array) {
		faults.StepAt{At: 2, Factor: 0.25}.Install(s, a.Pairs()[0].A.Composite())
	}
	run("scenario 2: gauged", false, failstutter.GaugedProportional{ProbeBlocks: 32}, drift)
	run("scenario 3: adaptive pull", false, failstutter.AdaptivePull{Depth: 2}, drift)

	fmt.Println("\nRecurring stutter: pair 0 at 5% speed three-quarters of the time")
	stutter := func(s *failstutter.Simulator, a *failstutter.Array) {
		faults.PeriodicStall{Period: 2, Duration: 1.5, Factor: 0.05, Until: 1e6}.
			Install(s, a.Pairs()[0].A.Composite())
	}
	run("scenario 1: static equal", false, failstutter.StaticEqual{}, stutter)
	run("scenario 3: adaptive pull", false, failstutter.AdaptivePull{Depth: 2}, stutter)

	fmt.Println("\nFail-stop side: disk dies mid-job, hot spare rebuilds")
	s := failstutter.NewSimulator()
	a := buildArray(s, false)
	spareParams := failstutter.HawkParams("spare-0")
	spareParams.Zones = []failstutter.DiskZone{{CapacityFrac: 1, Bandwidth: healthyBW}}
	spare, err := failstutter.NewDisk(s, spareParams)
	if err != nil {
		panic(err)
	}
	failstutter.EnableReconstruction(a, failstutter.NewSparePool(spare), 256,
		func(e failstutter.ReconEvent) {
			fmt.Printf("  pair %d rebuilt onto the spare: %d blocks in %.2f s\n",
				e.PairID, e.Blocks, e.Duration)
		})
	s.At(1.0, a.Pairs()[2].A.Fail)
	res, err := failstutter.WriteAndMeasure(s, a, failstutter.AdaptivePull{Depth: 2}, jobBlocks)
	if err != nil {
		panic(err)
	}
	s.Run() // let reconstruction finish
	fmt.Printf("  job completed at %.2f MB/s despite the failure; pair 2 degraded: %v\n",
		res.Throughput/1e6, a.Pairs()[2].Degraded())
}

// Quickstart: watch a component stutter, detect it, and see the registry
// publish a persistent performance fault.
//
// A simulated disk serves a constant stream of requests. Thirty seconds
// in it degrades to 30% of its rate (a performance fault — the disk has
// NOT failed). A spec detector with hysteresis classifies it, and the
// controller publishes the transition to the registry, where a subscriber
// reacts — the complete fail-stutter loop in one file.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"failstutter"
)

func main() {
	s := failstutter.NewSimulator()

	disk, err := failstutter.NewDisk(s, failstutter.HawkParams("hawk-0"))
	if err != nil {
		panic(err)
	}

	// Keep the disk busy with 1 MB sequential reads forever.
	var refill func(block int64)
	refill = func(block int64) {
		if block+256 > disk.Params().CapacityBlocks {
			block = 0
		}
		disk.Read(block, 256, func(float64) { refill(block + 256) })
	}
	refill(0)

	// The performance fault: at t=30 s the disk slows to 30% (imagine a
	// bad-block storm or a competing background scrub).
	s.At(30, func() { disk.Composite().Set("degradation", 0.3) })
	// And at t=90 s it recovers.
	s.At(90, func() { disk.Composite().Clear("degradation") })

	// The fail-stutter control plane: probe the disk's byte counter every
	// second, judge it against its spec (5.5 MB/s outer zone, 30%
	// tolerance, promote to absolute after 20 s of silence), publish only
	// persistent transitions.
	ctl := failstutter.NewController(s)
	ctl.Watch("hawk-0", disk.BytesCompleted, failstutter.AttachConfig{
		Interval: 1,
		Detector: failstutter.NewSpecDetector(failstutter.Spec{
			ExpectedRate:     5.5e6,
			Tolerance:        0.3,
			PromotionTimeout: 20,
		}),
		Policy: failstutter.NotifyPersistent,
	})

	ctl.Registry().Subscribe(func(e failstutter.RegistryEvent) {
		fmt.Printf("t=%5.1fs  %s: %v -> %v\n", e.At, e.Component, e.From, e.To)
	})

	s.RunUntil(120)

	fmt.Printf("\nfinal state of hawk-0: %v\n", ctl.State("hawk-0"))
	fmt.Printf("notifications published: %d (every raw blip would have been noisier)\n",
		ctl.Registry().Notifications())
}

// WiND: the full fail-stutter loop in a network storage volume.
//
// Six storage nodes (disks behind network links) hold two replicas of
// every block. A controller probes each node's *service speed* — bytes
// per busy-second, so an idle node never looks slow — classifies it
// against its performance specification, and publishes persistent state.
// The placement policy consults that registry: writes divert away from a
// published stutterer, reads hedge around it, and per-request timeouts
// keep writers from wedging on a node that dies mid-request.
//
// The run injects, in order: a severe stutter on node 2 (recovers), and a
// fail-stop crash of node 4 (promoted to absolute after T seconds of
// silence). Watch the registry narrate the run.
//
// Run with: go run ./examples/wind
package main

import (
	"fmt"

	"failstutter"
	"failstutter/internal/faults"
)

func main() {
	s := failstutter.NewSimulator()
	v, err := failstutter.NewWindVolume(s, failstutter.WindVolumeParams{
		Nodes:        6,
		Replication:  2,
		BlockBytes:   4096,
		Policy:       failstutter.WindAdaptive,
		Spec:         failstutter.Spec{ExpectedRate: 1e6, Tolerance: 0.4, PromotionTimeout: 8},
		HedgeAfter:   0.05,
		WriteTimeout: 0.5,
	}, func(i int) failstutter.WindNodeParams {
		return failstutter.WindNodeParams{
			Disk: failstutter.DiskParams{
				Name:           fmt.Sprintf("disk-%d", i),
				CapacityBlocks: 1 << 22,
				BlockBytes:     4096,
				Zones:          []failstutter.DiskZone{{CapacityFrac: 1, Bandwidth: 1e6}},
				SeekTime:       0.0005,
				AgingFactor:    1,
			},
			LinkBandwidth: 10e6,
			LinkLatency:   0.0002,
		}
	})
	if err != nil {
		panic(err)
	}

	v.Controller().Registry().Subscribe(func(e failstutter.RegistryEvent) {
		fmt.Printf("t=%5.1fs  registry: %s %v -> %v\n", e.At, e.Component, e.From, e.To)
	})

	// Faults: node 2 stutters at 5% during [5, 15); node 4 dies at 20.
	faults.Interval{Start: 5, End: 15, Factor: 0.05}.Install(s, v.Node(2).Disk().Composite())
	faults.CrashAt{At: 20}.Install(s, v.Node(4).Disk().Composite())

	// Four closed-loop writers for 40 simulated seconds.
	const horizon = 40.0
	for w := 0; w < 4; w++ {
		var loop func()
		loop = func() {
			if s.Now() >= horizon {
				return
			}
			v.Write(loop)
		}
		loop()
	}
	// Progress snapshots.
	last := uint64(0)
	for t := 5.0; t <= horizon; t += 5 {
		t := t
		s.At(t, func() {
			cur := v.Written()
			fmt.Printf("t=%5.1fs  %6d writes (+%d in last 5s), %d diverted\n",
				t, cur, cur-last, v.Diverted())
			last = cur
		})
	}
	s.RunUntil(horizon)

	fmt.Printf("\nfinal: %d writes, %d diverted replicas, %d placement records\n",
		v.Written(), v.Diverted(), v.Bookkeeping())
	fmt.Println("node 4 state:", v.Controller().State("node-4"))
	fmt.Println("\nthe loop the paper asks for: probe -> classify -> publish persistent state -> adapt placement")
}
